"""Figure 9: dynamic sketch counting under failure.

Setup (paper): 100 000 hosts each holding the value 1 (so the network-wide
sum is the network size); after 20 rounds of gossip half the hosts are
removed; the standard deviation of the hosts' sum estimates from the
correct sum is plotted per round for two protocols:

* "propagation limiting off" — naive sketch counting (bits never decay):
  the estimate stays at the pre-failure size, so once half the hosts leave
  the error jumps to roughly half the original population and never drops;
* "propagation limiting on" — Count-Sketch-Reset with the cutoff
  f(k) = 7 + k/4: the stale bits age out and the estimate returns to the
  surviving population within about 10 rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.render import render_series_table
from repro.api.spec import ScenarioSpec, run_scenario
from repro.metrics.convergence import reconvergence_round

__all__ = ["Fig9Result", "run_fig9", "render_fig9", "counting_spec"]


def counting_spec(
    n_hosts: int,
    rounds: int,
    *,
    bins: int,
    bits: int,
    cutoff: str = "default",
    events=(),
    seed: int = 0,
    backend: str = "vectorized",
    name: str = "",
) -> ScenarioSpec:
    """One declarative Count-Sketch-Reset counting scenario.

    ``cutoff`` is a :data:`~repro.api.spec.NAMED_CUTOFFS` name —
    ``"default"`` for the paper's f(k) = 7 + k/4 propagation limiting,
    ``"off"`` for the naive never-decaying variant.
    """
    return ScenarioSpec(
        protocol="count-sketch-reset",
        protocol_params={"bins": int(bins), "bits": int(bits), "cutoff": cutoff},
        workload="constant",
        n_hosts=n_hosts,
        rounds=rounds,
        seed=seed,
        events=events,
        backend=backend,
        name=name,
    )


@dataclass
class Fig9Result:
    """Error series for the counting-under-failure experiment."""

    n_hosts: int
    rounds: int
    failure_round: int
    failure_fraction: float
    bins: int
    bits: int
    seed: int
    #: Count-Sketch-Reset ("propagation limiting on").
    limited_errors: List[float] = field(default_factory=list)
    #: Naive sketch counting ("propagation limiting off").
    naive_errors: List[float] = field(default_factory=list)
    truths: List[float] = field(default_factory=list)

    def recovery_rounds(self, threshold: float) -> Optional[int]:
        """Rounds after the failure for the limited variant to get under ``threshold``."""
        return reconvergence_round(
            self.limited_errors, threshold, disturbance_round=self.failure_round
        )

    def naive_final_error(self) -> float:
        """Final error of the naive variant (stays roughly at the removed population)."""
        return self.naive_errors[-1]

    def limited_final_error(self) -> float:
        """Final error of the cutoff-limited variant."""
        return self.limited_errors[-1]


def run_fig9(
    n_hosts: int = 4000,
    *,
    rounds: int = 40,
    failure_round: int = 20,
    failure_fraction: float = 0.5,
    bins: int = 32,
    bits: int = 20,
    seed: int = 0,
    backend: str = "vectorized",
    store=None,
) -> Fig9Result:
    """Run the Figure 9 experiment (scaled to ``n_hosts``).

    Both variants are declarative scenarios executed through the backend
    layer — the same sketch with the propagation-limiting cutoff on
    (``"default"``) and off (``"off"``).  An optional
    :class:`repro.store.ResultStore` makes regeneration incremental.
    """
    if failure_round >= rounds:
        raise ValueError("failure_round must fall inside the simulated rounds")
    failure = {
        "event": "failure",
        "round": failure_round,
        "model": "uncorrelated",
        "fraction": failure_fraction,
    }
    result = Fig9Result(
        n_hosts=n_hosts,
        rounds=rounds,
        failure_round=failure_round,
        failure_fraction=failure_fraction,
        bins=bins,
        bits=bits,
        seed=seed,
    )
    for name, cutoff in (("limited", "default"), ("naive", "off")):
        spec = counting_spec(
            n_hosts,
            rounds,
            bins=bins,
            bits=bits,
            cutoff=cutoff,
            events=(failure,),
            seed=seed,
            backend=backend,
            name=f"fig9 propagation limiting {'on' if name == 'limited' else 'off'}",
        )
        run = run_scenario(spec, store=store)
        if name == "limited":
            result.limited_errors = run.errors()
            result.truths = run.truths()
        else:
            result.naive_errors = run.errors()
    return result


def render_fig9(result: Fig9Result, *, every: int = 2) -> str:
    """Render both curves as an aligned table."""
    rounds_axis = list(range(1, result.rounds + 1))
    series = {
        "propagation limiting on": result.limited_errors,
        "propagation limiting off": result.naive_errors,
        "correct sum": result.truths,
    }
    header = (
        f"Figure 9 — dynamic counting under failure: {result.n_hosts} hosts each holding 1, "
        f"{result.failure_fraction:.0%} removed at round {result.failure_round}; "
        f"{result.bins} bins x {result.bits} bits, cutoff f(k)=7+k/4\n"
        "Standard deviation from the correct sum per gossip round:\n"
    )
    return header + render_series_table("round", rounds_axis, series, every=every)
