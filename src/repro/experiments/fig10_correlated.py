"""Figure 10: dynamic averaging under correlated failures.

Setup (paper): as Figure 8, but the failure removes the *highest-valued*
half of the hosts, so the true average drops from ≈50 to ≈25 while the
mass circulating in the system still encodes the old average.

* Figure 10(a): the basic Push-Sum-Revert protocol under push/pull gossip.
  λ = 0 (static Push-Sum) never recovers; larger λ recovers faster but
  plateaus at a larger residual error.
* Figure 10(b): the Full-Transfer optimisation (mass exported in N = 4
  parcels, estimate over the last T = 3 mass-bearing rounds).  Convergence
  is faster and the plateaus are much lower; the paper quotes σ ≈ 2.13
  (8.5 %) within 10 rounds at λ = 0.5 and σ ≈ 0.694 (2.8 %) at λ = 0.1
  after ≈35 rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.render import render_series_table
from repro.api.spec import run_scenario
from repro.experiments.fig8_uncorrelated import push_sum_spec
from repro.metrics.convergence import plateau_error, reconvergence_round

__all__ = ["Fig10Result", "run_fig10", "render_fig10", "DEFAULT_LAMBDAS"]

#: Reversion constants swept in the paper's figure.
DEFAULT_LAMBDAS: Tuple[float, ...] = (0.0, 0.001, 0.01, 0.1, 0.5)


@dataclass
class Fig10Result:
    """Error series for both panels of Figure 10."""

    n_hosts: int
    rounds: int
    failure_round: int
    failure_fraction: float
    parcels: int
    history: int
    seed: int
    #: λ → per-round error, basic protocol (panel a).
    basic_errors: Dict[float, List[float]] = field(default_factory=dict)
    #: λ → per-round error, Full-Transfer optimisation (panel b).
    full_transfer_errors: Dict[float, List[float]] = field(default_factory=dict)
    #: per-round correct average (drops at the failure round).
    truths: List[float] = field(default_factory=list)

    # ------------------------------------------------------------- summaries
    def plateau(self, reversion: float, *, full_transfer: bool = False, tail: int = 5) -> float:
        """Mean error over the last ``tail`` rounds for the given variant."""
        series = self.full_transfer_errors if full_transfer else self.basic_errors
        return plateau_error(series[reversion], tail=tail)

    def recovery_rounds(
        self, reversion: float, threshold: float, *, full_transfer: bool = False
    ) -> Optional[int]:
        """Rounds after the failure until the error stays below ``threshold``."""
        series = self.full_transfer_errors if full_transfer else self.basic_errors
        return reconvergence_round(
            series[reversion], threshold, disturbance_round=self.failure_round
        )


def run_fig10(
    n_hosts: int = 4000,
    *,
    rounds: int = 60,
    failure_round: int = 20,
    failure_fraction: float = 0.5,
    lambdas: Sequence[float] = DEFAULT_LAMBDAS,
    parcels: int = 4,
    history: int = 3,
    include_full_transfer: bool = True,
    seed: int = 0,
    backend: str = "vectorized",
    store=None,
) -> Fig10Result:
    """Run both panels of the Figure 10 experiment (scaled to ``n_hosts``).

    Every (λ, variant) pair is one declarative scenario executed through the
    backend layer; panel (b) runs the ``push-sum-revert-full-transfer``
    protocol.  An optional :class:`repro.store.ResultStore` makes
    regeneration incremental — touching one protocol re-runs only the
    curves whose code fingerprint changed.
    """
    if failure_round >= rounds:
        raise ValueError("failure_round must fall inside the simulated rounds")
    failure = {
        "event": "failure",
        "round": failure_round,
        "model": "correlated",
        "fraction": failure_fraction,
        "highest": True,
    }
    result = Fig10Result(
        n_hosts=n_hosts,
        rounds=rounds,
        failure_round=failure_round,
        failure_fraction=failure_fraction,
        parcels=parcels,
        history=history,
        seed=seed,
    )

    def run_variant(reversion: float, mode: str) -> Tuple[List[float], List[float]]:
        spec = push_sum_spec(
            n_hosts,
            rounds,
            reversion,
            mode=mode,
            parcels=parcels,
            history=history,
            events=(failure,),
            seed=seed,
            backend=backend,
            name=f"fig10 lambda={reversion:g} ({mode})",
        )
        run = run_scenario(spec, store=store)
        return run.errors(), run.truths()

    for index, reversion in enumerate(lambdas):
        basic_errors, truths = run_variant(float(reversion), "pushpull")
        result.basic_errors[float(reversion)] = basic_errors
        if index == 0:
            result.truths = truths
        if include_full_transfer:
            full_errors, _ = run_variant(float(reversion), "full-transfer")
            result.full_transfer_errors[float(reversion)] = full_errors
    return result


def render_fig10(result: Fig10Result, *, every: int = 5) -> str:
    """Render both panels as aligned tables."""
    rounds_axis = list(range(1, result.rounds + 1))
    basic_series = {
        f"lambda={reversion:g}": errors for reversion, errors in sorted(result.basic_errors.items())
    }
    parts = [
        (
            f"Figure 10(a) — correlated failures, basic Push-Sum-Revert: {result.n_hosts} hosts, "
            f"highest-valued {result.failure_fraction:.0%} removed at round {result.failure_round} "
            "(true average 50 -> 25)\n"
            "Standard deviation from the correct average per gossip round:\n"
        )
        + render_series_table("round", rounds_axis, basic_series, every=every)
    ]
    if result.full_transfer_errors:
        full_series = {
            f"lambda={reversion:g}": errors
            for reversion, errors in sorted(result.full_transfer_errors.items())
        }
        parts.append(
            (
                f"\n\nFigure 10(b) — Full-Transfer optimisation (N={result.parcels} parcels, "
                f"T={result.history} round history):\n"
            )
            + render_series_table("round", rounds_axis, full_series, every=every)
        )
    return "".join(parts)
