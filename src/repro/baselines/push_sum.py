"""Kempe et al.'s Push-Sum averaging protocol (and its push/pull variant).

Every host maintains a *mass*: a weight ``w`` (initially 1) and a sum ``v``
(initially the host's value).  Each round the host sends half of its mass
to a random peer and half to itself, then replaces its mass with the total
mass it received.  The ratio ``v/w`` converges to the network-wide average
because every exchange conserves total mass while mixing it.

The push/pull variant (Karp et al.) lets the contacted peer respond, which
in mass terms makes each exchange a pairwise averaging of the two masses;
the paper uses push/pull for all its averaging experiments because it
roughly halves convergence time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.protocol import ExchangeProtocol

__all__ = ["MassState", "PushSum", "PushPull"]


@dataclass
class MassState:
    """Per-host Push-Sum state.

    Attributes
    ----------
    weight, total:
        The mass: normalisation weight ``w`` and value sum ``v``.
    initial_value:
        The host's own datum ``v₀``; Push-Sum never looks at it again after
        initialisation, but Push-Sum-Revert decays towards it.
    last_estimate:
        The most recent well-defined estimate, reported while the host
        temporarily holds no mass (possible under Full-Transfer).
    history:
        Recent ``(weight, total)`` snapshots; used only by the Full-Transfer
        optimisation's windowed estimator.
    """

    weight: float
    total: float
    initial_value: float
    last_estimate: float
    history: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def mass(self) -> Tuple[float, float]:
        """The (weight, total) pair."""
        return (self.weight, self.total)


class PushSum(ExchangeProtocol):
    """Kempe et al.'s Push-Sum averaging (Figure 1 of the paper).

    Parameters
    ----------
    weight_epsilon:
        Weights below this threshold are treated as "no mass": the host
        reports its last well-defined estimate instead of dividing by ~0.
    """

    name = "push-sum"
    aggregate = "average"
    fanout = 1

    def __init__(self, weight_epsilon: float = 1e-12):
        if weight_epsilon <= 0:
            raise ValueError("weight_epsilon must be positive")
        self.weight_epsilon = float(weight_epsilon)

    # ------------------------------------------------------------------ state
    def create_state(self, host_id: int, value: float, rng: np.random.Generator) -> MassState:
        return MassState(
            weight=1.0,
            total=float(value),
            initial_value=float(value),
            last_estimate=float(value),
        )

    def rebase(self, state: MassState, value: float) -> None:
        """Update the host's own datum (used by value-change events)."""
        state.initial_value = float(value)

    # ------------------------------------------------------------- push hooks
    def make_payloads(
        self,
        state: MassState,
        peers: Sequence[int],
        rng: np.random.Generator,
    ) -> List[Tuple[Optional[int], Any]]:
        if not peers:
            # Isolated host: all mass goes back to itself, nothing changes.
            return [(None, (state.weight, state.total))]
        half_weight = state.weight / 2.0
        half_total = state.total / 2.0
        peer = peers[0]
        return [(None, (half_weight, half_total)), (peer, (half_weight, half_total))]

    def integrate(
        self, state: MassState, payloads: Sequence[Any], rng: np.random.Generator
    ) -> None:
        if not payloads:
            # Everything this host owned was pushed out and nothing arrived:
            # the host is left (temporarily) massless.
            state.weight = 0.0
            state.total = 0.0
            return
        state.weight = float(sum(weight for weight, _ in payloads))
        state.total = float(sum(total for _, total in payloads))

    def finalize_round(
        self, state: MassState, received_count: int, rng: np.random.Generator
    ) -> None:
        self._refresh_estimate(state)

    # --------------------------------------------------------- exchange hooks
    def exchange(self, state_a: MassState, state_b: MassState, rng: np.random.Generator) -> None:
        """Push/pull reconciliation: both parties leave with the average mass.

        Exchanging half the *difference* in mass (Karp et al.) is exactly a
        pairwise averaging of the two mass vectors, and conserves their sum.
        """
        mean_weight = (state_a.weight + state_b.weight) / 2.0
        mean_total = (state_a.total + state_b.total) / 2.0
        state_a.weight = state_b.weight = mean_weight
        state_a.total = state_b.total = mean_total
        self._refresh_estimate(state_a)
        self._refresh_estimate(state_b)

    def exchange_size(self, state_a: MassState, state_b: MassState) -> int:
        return 16  # two 8-byte floats each way

    # -------------------------------------------------------------- estimates
    def _refresh_estimate(self, state: MassState) -> None:
        if state.weight > self.weight_epsilon:
            state.last_estimate = state.total / state.weight

    def estimate(self, state: MassState) -> float:
        if state.weight > self.weight_epsilon:
            return state.total / state.weight
        return state.last_estimate

    # ---------------------------------------------------------- sign-off hook
    def sign_off(
        self,
        state: MassState,
        peer_state: Optional[MassState],
        rng: np.random.Generator,
    ) -> None:
        """Graceful departure: hand the whole mass to a surviving peer.

        Used by :class:`repro.core.departure.GracefulDepartureEvent`; with no
        survivor available the mass is simply dropped (the silent-failure
        outcome).
        """
        if peer_state is not None:
            peer_state.weight += state.weight
            peer_state.total += state.total
        state.weight = 0.0
        state.total = 0.0

    def payload_size(self, payload: Any) -> int:
        return 16

    # ----------------------------------------------------------- conservation
    def payload_mass(self, payload: Any) -> Optional[float]:
        """The weight component — the quantity Push-Sum conserves."""
        return float(payload[0])

    def state_mass(self, state: MassState) -> Optional[float]:
        return float(state.weight)

    def describe(self) -> dict:
        return {"name": self.name, "aggregate": self.aggregate, "fanout": self.fanout}


class PushPull(PushSum):
    """Push-Sum run exclusively in push/pull (pairwise exchange) mode.

    Functionally identical to :class:`PushSum`; the separate class exists so
    experiment configurations read the way the paper describes them
    ("the Push-Pull variant of traditional Push-Sum").
    """

    name = "push-pull"
