"""Kostoulas et al.'s coordinator-based network-size estimators.

The related-work section contrasts Count-Sketch-Reset with two
coordinator-based estimators:

* **Hops Sampling** — a leader initiates a gossip flood and hosts record
  the round at which they first hear it; the average first-reception round
  grows like log₂(n), so the leader can invert it into a size estimate.
* **Interval Density** — hosts carry uniformly random identifiers in
  [0, 1); the leader passively samples the identifiers it encounters and
  estimates the population from the density of *distinct* identifiers
  falling in a sub-interval.

Both need a designated coordinator (a single point of failure the paper's
protocols avoid) but use far less bandwidth.  They are implemented as
self-contained estimators over a uniform-gossip population: they run their
own small simulation and return the leader's estimate; the ablation bench
compares their accuracy/cost against Count-Sketch-Reset.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

import numpy as np

__all__ = ["HopsSampling", "IntervalDensity"]


class HopsSampling:
    """Leader-based size estimation from gossip-flood hop counts.

    Parameters
    ----------
    n_hosts:
        Population size to simulate (the quantity being estimated; the
        estimator itself never reads it except to drive the simulation).
    rounds:
        Gossip rounds to run; must exceed log₂(n) for the flood to cover the
        network (the default scales automatically when ``None``).
    fanout:
        Peers contacted per informed host per round (classic push gossip
        uses 1).
    seed:
        Randomness seed.
    """

    #: Empirical offset between mean first-reception round and log2(n) under
    #: uniform push gossip with fanout 1 (mean reception time ≈ log2 n + c).
    CALIBRATION_OFFSET = 0.3

    def __init__(
        self,
        n_hosts: int,
        *,
        rounds: Optional[int] = None,
        fanout: int = 1,
        seed: int = 0,
    ):
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.n_hosts = int(n_hosts)
        self.fanout = int(fanout)
        self.rounds = int(rounds) if rounds is not None else int(4 * math.log2(n_hosts) + 8)
        self.seed = int(seed)

    def run(self) -> float:
        """Simulate the flood and return the leader's size estimate."""
        rng = np.random.default_rng(self.seed)
        first_heard = np.full(self.n_hosts, -1, dtype=np.int64)
        first_heard[0] = 0  # host 0 is the leader
        for round_index in range(1, self.rounds + 1):
            informed = np.nonzero(first_heard >= 0)[0]
            if informed.size == self.n_hosts:
                break
            targets = rng.integers(0, self.n_hosts, size=(informed.size, self.fanout))
            for column in range(self.fanout):
                newly = targets[:, column]
                fresh = newly[first_heard[newly] < 0]
                first_heard[fresh] = round_index
        heard = first_heard[first_heard > 0]
        if heard.size == 0:
            return 1.0
        mean_hops = float(heard.mean())
        return float(2.0 ** (mean_hops - self.CALIBRATION_OFFSET))

    def messages_used(self) -> int:
        """Upper bound on messages: every informed host pushes ``fanout`` per round."""
        return self.n_hosts * self.fanout * self.rounds


class IntervalDensity:
    """Leader-based size estimation from the density of observed identifiers.

    The leader gossips normally for ``rounds`` rounds and remembers every
    distinct identifier it hears about (its own contacts plus identifiers
    piggybacked on relayed gossip, modelled by a per-round sample of
    ``samples_per_round`` identifiers).  The population estimate is

        n ≈ |{observed identifiers in [0, s)}| / s

    where ``s`` is the sub-interval width.
    """

    def __init__(
        self,
        n_hosts: int,
        *,
        rounds: int = 30,
        subinterval: float = 0.25,
        samples_per_round: int = 4,
        seed: int = 0,
    ):
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        if not 0.0 < subinterval <= 1.0:
            raise ValueError("subinterval must be in (0, 1]")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if samples_per_round < 1:
            raise ValueError("samples_per_round must be >= 1")
        self.n_hosts = int(n_hosts)
        self.rounds = int(rounds)
        self.subinterval = float(subinterval)
        self.samples_per_round = int(samples_per_round)
        self.seed = int(seed)

    def run(self) -> float:
        """Simulate passive observation and return the leader's size estimate."""
        rng = np.random.default_rng(self.seed)
        identifiers = rng.random(self.n_hosts)
        observed: Set[int] = set()
        for _ in range(self.rounds):
            contacts = rng.integers(0, self.n_hosts, size=self.samples_per_round)
            observed.update(int(contact) for contact in contacts)
        in_interval = [host for host in observed if identifiers[host] < self.subinterval]
        if not in_interval:
            return float(len(observed))
        # Correct for the fact that only a fraction of the population has been
        # observed at all: the density estimate applies to the observed set,
        # which undercounts when observation is sparse.  With enough rounds the
        # observed set approaches the full population and the correction
        # vanishes.
        return float(len(in_interval) / self.subinterval)

    def messages_used(self) -> int:
        """Messages the leader inspects (it only listens; no extra traffic)."""
        return self.rounds * self.samples_per_round


def _self_test() -> List[float]:  # pragma: no cover - manual sanity check
    return [HopsSampling(1000, seed=1).run(), IntervalDensity(1000, rounds=2000, seed=1).run()]
