"""Epoch-restarted Push-Sum.

Section II-C describes the simplest way to make a static protocol dynamic:
periodically reset it and start over.  The protocol below restarts
Push-Sum every ``epoch_length`` rounds; between restarts it reports the
estimate the *previous* epoch converged to (reporting the half-converged
current epoch would be strictly worse).  Per-host epoch offsets model the
weak clock synchronisation the paper worries about: hosts whose epochs are
misaligned reset at different rounds, and mass exchanged across an epoch
boundary is partially discarded — exactly the disruption described for
mobile hosts travelling between cliques.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.push_sum import MassState, PushSum

__all__ = ["EpochPushSum", "EpochState"]


@dataclass
class EpochState:
    """Per-host state: the inner Push-Sum mass plus epoch bookkeeping."""

    mass: MassState
    epoch_offset: int
    current_epoch: int
    reported_estimate: float


class EpochPushSum(PushSum):
    """Push-Sum restarted every ``epoch_length`` rounds.

    Parameters
    ----------
    epoch_length:
        Rounds between restarts.  Too short and the protocol resets before
        converging; too long and the reported value grows stale — the tuning
        dilemma the paper uses to motivate Push-Sum-Revert.
    max_offset:
        Per-host epoch offset drawn uniformly from ``[0, max_offset]``;
        ``0`` models perfectly synchronised clocks.
    """

    name = "epoch-push-sum"
    aggregate = "average"

    def __init__(self, epoch_length: int = 15, max_offset: int = 0, weight_epsilon: float = 1e-12):
        super().__init__(weight_epsilon=weight_epsilon)
        if epoch_length < 1:
            raise ValueError("epoch_length must be >= 1")
        if max_offset < 0:
            raise ValueError("max_offset must be non-negative")
        self.epoch_length = int(epoch_length)
        self.max_offset = int(max_offset)

    # ------------------------------------------------------------------ state
    def create_state(self, host_id: int, value: float, rng: np.random.Generator) -> EpochState:
        offset = int(rng.integers(0, self.max_offset + 1)) if self.max_offset else 0
        return EpochState(
            mass=MassState(
                weight=1.0,
                total=float(value),
                initial_value=float(value),
                last_estimate=float(value),
            ),
            epoch_offset=offset,
            current_epoch=0,
            reported_estimate=float(value),
        )

    def rebase(self, state: EpochState, value: float) -> None:
        state.mass.initial_value = float(value)

    # ------------------------------------------------------------- round hooks
    def begin_round(self, state: EpochState, round_index: int, rng: np.random.Generator) -> None:
        epoch = (round_index + state.epoch_offset) // self.epoch_length
        if epoch != state.current_epoch:
            # Freeze the estimate the finished epoch reached, then restart.
            if state.mass.weight > self.weight_epsilon:
                state.reported_estimate = state.mass.total / state.mass.weight
            state.mass.weight = 1.0
            state.mass.total = state.mass.initial_value
            state.current_epoch = epoch

    def make_payloads(
        self, state: EpochState, peers: Sequence[int], rng: np.random.Generator
    ) -> List[Tuple[Optional[int], Any]]:
        return super().make_payloads(state.mass, peers, rng)

    def integrate(self, state: EpochState, payloads: Sequence[Any], rng: np.random.Generator) -> None:
        super().integrate(state.mass, payloads, rng)

    def finalize_round(self, state: EpochState, received_count: int, rng: np.random.Generator) -> None:
        super().finalize_round(state.mass, received_count, rng)

    def exchange(self, state_a: EpochState, state_b: EpochState, rng: np.random.Generator) -> None:
        if state_a.current_epoch != state_b.current_epoch:
            # Hosts in different epochs cannot meaningfully mix mass; the
            # younger host adopts nothing and the exchange is wasted — the
            # "disruption while the destination clique settles on a new epoch
            # number" the paper describes.
            return
        super().exchange(state_a.mass, state_b.mass, rng)

    def exchange_size(self, state_a: EpochState, state_b: EpochState) -> int:
        return 20  # mass plus the epoch counter annotation

    # -------------------------------------------------------------- estimates
    def estimate(self, state: EpochState) -> float:
        # Early in an epoch the inner estimate is dominated by the host's own
        # value; report the previous epoch's converged value instead.
        return state.reported_estimate

    def current_epoch_estimate(self, state: EpochState) -> float:
        """The (possibly unconverged) estimate of the epoch in progress."""
        return super().estimate(state.mass)

    def state_mass(self, state: EpochState) -> Optional[float]:
        # The epoch restart in begin_round re-mints mass by design; the
        # engine measures that injection around the hook (DESIGN.md §8).
        return float(state.mass.weight)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "aggregate": self.aggregate,
            "epoch_length": self.epoch_length,
            "max_offset": self.max_offset,
        }
