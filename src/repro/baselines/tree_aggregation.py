"""TAG-style spanning-tree (overlay) aggregation.

Overlay protocols such as TAG flood a query through the network, use the
flood paths as a spanning tree, aggregate partial results up the tree to
the requesting root, and disseminate the answer back down.  They are very
bandwidth-efficient but depend on the tree staying valid for the duration
of the query — the assumption that breaks down in the mobile settings this
paper targets.

Because the computation is inherently coordinated (data flows along a
global structure rather than evolving per-host state), it is implemented
here as a standalone aggregator over a topology snapshot rather than as a
gossip :class:`~repro.simulator.protocol.AggregationProtocol`.  The
examples and ablation benchmarks call it once per round on the *current*
communication graph to obtain the best-case overlay answer and its
messaging cost, which is the honest comparison point for the gossip
protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.topology.connectivity import bfs_tree, connected_component

__all__ = ["TreeAggregation", "TreeAggregationResult"]

Adjacency = Dict[int, Set[int]]


@dataclass(frozen=True)
class TreeAggregationResult:
    """Outcome of one TAG-style query.

    Attributes
    ----------
    root:
        The querying host.
    reachable:
        Hosts that participated (the root's connected component).
    value:
        The aggregate over the reachable hosts.
    messages:
        Number of point-to-point messages used: one flood message and one
        aggregation message per tree edge, plus one dissemination message
        per tree edge when the answer is pushed back down.
    depth:
        Height of the spanning tree (bounds the query latency in rounds).
    """

    root: int
    reachable: Set[int]
    value: float
    messages: int
    depth: int


class TreeAggregation:
    """One-shot TAG-style aggregation over a communication-graph snapshot.

    Parameters
    ----------
    aggregate:
        ``"average"``, ``"count"`` or ``"sum"``.
    disseminate:
        Whether the root's answer is pushed back down the tree (adds one
        message per tree edge, and is what a "every host knows the answer"
        comparison against gossip requires).
    """

    def __init__(self, aggregate: str = "average", disseminate: bool = True):
        if aggregate not in ("average", "count", "sum"):
            raise ValueError(f"unsupported aggregate {aggregate!r}")
        self.aggregate = aggregate
        self.disseminate = bool(disseminate)

    # ------------------------------------------------------------------ query
    def query(
        self,
        graph: Adjacency,
        values: Mapping[int, float],
        root: int,
        *,
        alive: Optional[Iterable[int]] = None,
    ) -> TreeAggregationResult:
        """Run one query from ``root`` over the given topology snapshot."""
        alive_set = set(values) if alive is None else set(alive)
        if root not in alive_set:
            raise ValueError(f"root {root} is not a live host")
        parents = bfs_tree(graph, root, alive=alive_set)
        reachable = set(parents)
        # Partial aggregates flow leaf-to-root: each host sends exactly one
        # message to its parent carrying (sum, count) — enough to compute any
        # of the supported aggregates at the root.
        total = sum(values[host] for host in reachable)
        count = len(reachable)
        if self.aggregate == "count":
            answer = float(count)
        elif self.aggregate == "sum":
            answer = float(total)
        else:
            answer = float(total / count) if count else float("nan")
        tree_edges = max(0, count - 1)
        # flood + collect (+ disseminate) over every tree edge
        messages = tree_edges * (3 if self.disseminate else 2)
        depth = self._tree_depth(parents)
        return TreeAggregationResult(
            root=root, reachable=reachable, value=answer, messages=messages, depth=depth
        )

    def query_all_components(
        self,
        graph: Adjacency,
        values: Mapping[int, float],
        *,
        alive: Optional[Iterable[int]] = None,
    ) -> Dict[int, TreeAggregationResult]:
        """Run one query per connected component, rooted at its smallest id.

        Returns a map from every live host to the result of its component's
        query — the per-host "overlay answer" used when comparing against
        group-relative gossip error.
        """
        alive_set = set(values) if alive is None else set(alive)
        results: Dict[int, TreeAggregationResult] = {}
        remaining = set(alive_set)
        while remaining:
            root = min(remaining)
            component = connected_component(graph, root, alive=alive_set)
            result = self.query(graph, values, root, alive=alive_set)
            for host in component:
                results[host] = result
            remaining -= component
        return results

    # ------------------------------------------------------------------ utils
    @staticmethod
    def _tree_depth(parents: Mapping[int, Optional[int]]) -> int:
        depth = 0
        for node in parents:
            length = 0
            current: Optional[int] = node
            while current is not None and parents.get(current) is not None:
                current = parents[current]
                length += 1
                if length > len(parents):  # pragma: no cover - defensive
                    raise RuntimeError("cycle detected in spanning tree")
            depth = max(depth, length)
        return depth

    # ------------------------------------------------------------- comparison
    def per_round_messages(self, graph: Adjacency, values: Mapping[int, float]) -> int:
        """Messages needed to refresh every component's answer once."""
        results = self.query_all_components(graph, values)
        seen: Set[Tuple[int, float]] = set()
        total = 0
        for result in results.values():
            key = (result.root, result.value)
            if key not in seen:
                seen.add(key)
                total += result.messages
        return total
