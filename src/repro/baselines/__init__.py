"""Static distributed aggregation baselines.

These are the protocols the paper builds on (and compares against):

* :class:`PushSum` / :class:`PushPull` — Kempe, Dobra and Gehrke's
  gossip-based averaging (Figure 1 of the paper), in push and push/pull
  form;
* :class:`SketchCount` — Considine et al.'s duplicate-insensitive counting
  and summation with Flajolet–Martin sketches (Figure 2);
* :class:`EpochPushSum` — the "simplest form of dynamic aggregation": a
  static protocol restarted every epoch (Section II-C / Jelasity &
  Montresor);
* :class:`TreeAggregation` — a TAG-style spanning-tree overlay aggregator
  (Section II, "overlay protocols");
* :class:`HopsSampling` / :class:`IntervalDensity` — Kostoulas et al.'s
  coordinator-based size estimators discussed in related work.
"""

from repro.baselines.count_sketch import SketchCount
from repro.baselines.epoch import EpochPushSum
from repro.baselines.extrema import ExtremaGossip, ExtremaReset
from repro.baselines.push_sum import MassState, PushPull, PushSum
from repro.baselines.size_estimators import HopsSampling, IntervalDensity
from repro.baselines.tree_aggregation import TreeAggregation

__all__ = [
    "EpochPushSum",
    "ExtremaGossip",
    "ExtremaReset",
    "HopsSampling",
    "IntervalDensity",
    "MassState",
    "PushPull",
    "PushSum",
    "SketchCount",
    "TreeAggregation",
]
