"""Gossip-based extrema (min / max) aggregation.

Extrema are the simplest duplicate-insensitive aggregates: the merge
operator is ``min`` (or ``max``), so any amount of re-forwarding leaves the
result unchanged, and convergence takes the same O(log n) rounds as rumour
spreading.  The paper's introduction lists "most popular song" — an argmax
— among the aggregates a proximity application wants, and extrema share
exactly the dynamic-membership weakness of counting sketches: once a host
has exported the global maximum, the value survives the host's departure
forever.

Two protocols are provided:

* :class:`ExtremaGossip` — the static baseline: hosts gossip the best value
  (and the identifier of the host that originated it) they have seen.
* :class:`ExtremaReset` — a dynamic extension built with the same freshness
  idea as Count-Sketch-Reset: the best value travels with an *age* counter
  that every hop increments once per round and that its originator keeps
  resetting to zero; a value whose age exceeds a cutoff is discarded and
  the host falls back to the best still-fresh value it knows (at worst its
  own).  When the host owning the maximum departs, its value stops being
  refreshed and ages out within `cutoff` + propagation-time rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.protocol import ExchangeProtocol

__all__ = ["ExtremaGossip", "ExtremaReset", "ExtremaState"]


@dataclass
class ExtremaState:
    """Per-host extrema state: the host's own value plus the best known value."""

    own_value: float
    own_id: int
    best_value: float
    best_id: int
    best_age: int = 0


class ExtremaGossip(ExchangeProtocol):
    """Static gossip maximum (or minimum) — converges fast, never forgets.

    Parameters
    ----------
    maximum:
        True (default) tracks the maximum, False the minimum.
    """

    name = "extrema-gossip"
    aggregate = "max"
    fanout = 1

    def __init__(self, maximum: bool = True):
        self.maximum = bool(maximum)
        self.aggregate = "max" if maximum else "min"

    # ------------------------------------------------------------------ state
    def create_state(self, host_id: int, value: float, rng: np.random.Generator) -> ExtremaState:
        return ExtremaState(own_value=float(value), own_id=host_id,
                            best_value=float(value), best_id=host_id)

    def rebase(self, state: ExtremaState, value: float) -> None:
        """Update the host's own datum (used by value-change events).

        When the host currently advertises its *own* value, the advertised
        copy moves with it; a best value learned from elsewhere is kept (it
        can only be displaced by gossip or, under :class:`ExtremaReset`, by
        ageing out).  Mirrors
        :meth:`repro.simulator.vectorized.VectorizedExtrema.change_values`.
        """
        state.own_value = float(value)
        if state.best_id == state.own_id:
            state.best_value = float(value)

    def _better(self, a: float, b: float) -> bool:
        return a > b if self.maximum else a < b

    # ------------------------------------------------------------- push hooks
    def make_payloads(
        self, state: ExtremaState, peers: Sequence[int], rng: np.random.Generator
    ) -> List[Tuple[Optional[int], Any]]:
        payload = (state.best_value, state.best_id, state.best_age)
        return [(peer, payload) for peer in peers]

    def integrate(
        self, state: ExtremaState, payloads: Sequence[Any], rng: np.random.Generator
    ) -> None:
        for value, identifier, age in payloads:
            self._absorb(state, value, identifier, age)

    def _absorb(self, state: ExtremaState, value: float, identifier: int, age: int) -> None:
        if self._better(value, state.best_value) or (
            value == state.best_value and age < state.best_age
        ):
            state.best_value = value
            state.best_id = identifier
            state.best_age = age

    # --------------------------------------------------------- exchange hooks
    def exchange(
        self, state_a: ExtremaState, state_b: ExtremaState, rng: np.random.Generator
    ) -> None:
        self._absorb(state_a, state_b.best_value, state_b.best_id, state_b.best_age)
        self._absorb(state_b, state_a.best_value, state_a.best_id, state_a.best_age)

    def exchange_size(self, state_a: ExtremaState, state_b: ExtremaState) -> int:
        return 16

    # -------------------------------------------------------------- estimates
    def estimate(self, state: ExtremaState) -> float:
        return state.best_value

    def argmax(self, state: ExtremaState) -> int:
        """The identifier of the host believed to hold the extremum."""
        return state.best_id

    def payload_size(self, payload: Any) -> int:
        return 16

    def describe(self) -> dict:
        return {"name": self.name, "aggregate": self.aggregate, "maximum": self.maximum}


class ExtremaReset(ExtremaGossip):
    """Dynamic extrema: the best value ages out unless its originator refreshes it.

    Parameters
    ----------
    maximum:
        Track the maximum (default) or minimum.
    cutoff:
        Maximum tolerated age (rounds since the originator last refreshed the
        value, as observed locally).  Under uniform gossip the age of a value
        whose originator is alive stays below the network's rumour-spreading
        time, so a cutoff a little above log2(population) suffices; the
        default of 15 covers every population this library simulates.
    """

    name = "extrema-reset"

    def __init__(self, maximum: bool = True, cutoff: int = 15):
        super().__init__(maximum)
        if cutoff < 1:
            raise ValueError("cutoff must be >= 1")
        self.cutoff = int(cutoff)

    def begin_round(self, state: ExtremaState, round_index: int, rng: np.random.Generator) -> None:
        # Our own value is always fresh; everything learned from others ages.
        if state.best_id == state.own_id:
            # Re-sync the advertised copy to the *current* own value: after a
            # value change the host may have re-absorbed its own stale
            # advertisement from the network, and refreshing that would keep
            # the outdated value alive forever.
            state.best_value = state.own_value
            state.best_age = 0
        else:
            state.best_age += 1
            if state.best_age > self.cutoff:
                # The extremum has not been refreshed for longer than any live
                # originator could explain: forget it and fall back to our own
                # value (gossip will re-supply the true current extremum).
                state.best_value = state.own_value
                state.best_id = state.own_id
                state.best_age = 0

    def describe(self) -> dict:
        description = super().describe()
        description["cutoff"] = self.cutoff
        return description
