"""Considine et al.'s Sketch-Count: static FM-sketch counting/summation.

Each host inserts its identifier(s) into a Flajolet–Martin sketch and
gossips the sketch; receivers take the bitwise OR.  Because the OR is
duplicate-insensitive the estimate is unaffected by how many times a
contribution is forwarded — but for exactly the same reason the estimate
can never *decrease*, so hosts that silently depart remain counted forever
(Figure 9's flat "propagation limiting off" curve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.protocol import ExchangeProtocol
from repro.sketches.fm_sketch import FMSketch

__all__ = ["SketchCount", "SketchCountState"]


@dataclass
class SketchCountState:
    """Per-host Sketch-Count state: the host's current union sketch."""

    sketch: FMSketch
    own_identifiers: int


class SketchCount(ExchangeProtocol):
    """Static distributed counting/summation with FM sketches (paper Figure 2).

    Parameters
    ----------
    bins:
        Number of stochastic-averaging bins ``m`` (the paper uses 64, for an
        expected error of ~9.7 %).
    bits:
        Bit positions per bin ``L``.
    value_as_identifiers:
        When true each host registers ``round(value)`` identifiers so the
        protocol estimates the network-wide *sum* (Considine's multiple
        insertion technique); when false each host registers
        ``identifiers_per_host`` identifiers and the protocol estimates the
        network *size*.
    identifiers_per_host:
        Identifier multiplier used when counting (Fig 11 registers 100
        identifiers per device to lift small populations into the sketch's
        accurate range); the estimate is divided by this factor.
    """

    name = "sketch-count"
    aggregate = "count"
    fanout = 1

    def __init__(
        self,
        bins: int = 64,
        bits: int = 32,
        *,
        value_as_identifiers: bool = False,
        identifiers_per_host: int = 1,
    ):
        if identifiers_per_host < 1:
            raise ValueError("identifiers_per_host must be >= 1")
        self.bins = int(bins)
        self.bits = int(bits)
        self.value_as_identifiers = bool(value_as_identifiers)
        self.identifiers_per_host = int(identifiers_per_host)
        if self.value_as_identifiers:
            self.aggregate = "sum"

    # ------------------------------------------------------------------ state
    def _identifier_count(self, value: float) -> int:
        if self.value_as_identifiers:
            count = int(round(value))
            if count < 0:
                raise ValueError("sketch summation requires non-negative values")
            return count
        return self.identifiers_per_host

    def create_state(self, host_id: int, value: float, rng: np.random.Generator) -> SketchCountState:
        sketch = FMSketch(self.bins, self.bits)
        count = self._identifier_count(value)
        for j in range(count):
            sketch.insert((host_id, j))
        return SketchCountState(sketch=sketch, own_identifiers=count)

    # ------------------------------------------------------------- push hooks
    def make_payloads(
        self,
        state: SketchCountState,
        peers: Sequence[int],
        rng: np.random.Generator,
    ) -> List[Tuple[Optional[int], Any]]:
        payloads: List[Tuple[Optional[int], Any]] = []
        for peer in peers:
            payloads.append((peer, state.sketch.matrix.copy()))
        return payloads

    def integrate(
        self, state: SketchCountState, payloads: Sequence[Any], rng: np.random.Generator
    ) -> None:
        for matrix in payloads:
            np.logical_or(state.sketch.matrix, matrix, out=state.sketch.matrix)

    # --------------------------------------------------------- exchange hooks
    def exchange(
        self, state_a: SketchCountState, state_b: SketchCountState, rng: np.random.Generator
    ) -> None:
        union = np.logical_or(state_a.sketch.matrix, state_b.sketch.matrix)
        state_a.sketch.matrix = union.copy()
        state_b.sketch.matrix = union

    def exchange_size(self, state_a: SketchCountState, state_b: SketchCountState) -> int:
        return state_a.sketch.size_bytes()

    # -------------------------------------------------------------- estimates
    def estimate(self, state: SketchCountState) -> float:
        raw = state.sketch.estimate()
        if self.value_as_identifiers:
            return raw
        return raw / self.identifiers_per_host

    def payload_size(self, payload: Any) -> int:
        return int(np.ceil(payload.size / 8))

    def describe(self) -> dict:
        return {
            "name": self.name,
            "aggregate": self.aggregate,
            "bins": self.bins,
            "bits": self.bits,
            "value_as_identifiers": self.value_as_identifiers,
            "identifiers_per_host": self.identifiers_per_host,
        }
