"""Prebuilt experiment scenarios matching the paper's evaluation setups.

A :class:`Scenario` bundles everything about a run *except* the protocol
under test: the host population and values, the gossip environment, the
scheduled membership events, the number of rounds and how errors should be
measured.  The experiment harness then instantiates the same scenario for
each protocol variant being compared (e.g. every reversion constant λ),
which guarantees the comparisons differ only in the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.environments import TraceEnvironment, UniformEnvironment
from repro.failures import CorrelatedFailure, FailureEvent, UncorrelatedFailure
from repro.mobility import haggle_dataset
from repro.workloads.values import constant_values, uniform_values

__all__ = [
    "Scenario",
    "uncorrelated_failure_scenario",
    "correlated_failure_scenario",
    "counting_failure_scenario",
    "trace_scenario",
]


@dataclass
class Scenario:
    """Everything about an experiment run except the protocol.

    Attributes
    ----------
    name:
        Scenario label used in result tables.
    values:
        Initial host values (one host per entry).
    environment_factory:
        Zero-argument callable building a fresh gossip environment.  A fresh
        environment per run keeps caches and registration state independent
        across the protocol variants being compared.
    events:
        Scheduled failure/join events.
    rounds:
        Number of gossip rounds to simulate.
    mode:
        Engine mode, ``"push"`` or ``"exchange"``.
    group_relative:
        Whether errors are measured against each host's group (trace runs).
    description:
        Human-readable summary recorded in results.
    """

    name: str
    values: List[float]
    environment_factory: Callable[[], object]
    events: List[object] = field(default_factory=list)
    rounds: int = 60
    mode: str = "exchange"
    group_relative: bool = False
    description: str = ""

    @property
    def n_hosts(self) -> int:
        """Initial population size."""
        return len(self.values)

    def build_environment(self):
        """A fresh environment instance for one run."""
        return self.environment_factory()

    def describe(self) -> dict:
        """A JSON-friendly description for EXPERIMENTS.md records."""
        return {
            "name": self.name,
            "n_hosts": self.n_hosts,
            "rounds": self.rounds,
            "mode": self.mode,
            "group_relative": self.group_relative,
            "events": [event.describe() for event in self.events if hasattr(event, "describe")],
            "description": self.description,
        }


def uncorrelated_failure_scenario(
    n_hosts: int = 10_000,
    *,
    failure_round: int = 20,
    failure_fraction: float = 0.5,
    rounds: int = 60,
    seed: int = 0,
    mode: str = "exchange",
) -> Scenario:
    """Fig 8: uniform values, uniform gossip, 50 % random hosts fail at round 20."""
    values = uniform_values(n_hosts, seed=seed)
    events = [
        FailureEvent(round=failure_round, model=UncorrelatedFailure(failure_fraction))
    ]
    return Scenario(
        name="uncorrelated-failure",
        values=values,
        environment_factory=lambda: UniformEnvironment(n_hosts),
        events=events,
        rounds=rounds,
        mode=mode,
        description=(
            f"{n_hosts} hosts, values U[0,100), uniform gossip; "
            f"{failure_fraction:.0%} random hosts removed at round {failure_round}"
        ),
    )


def correlated_failure_scenario(
    n_hosts: int = 10_000,
    *,
    failure_round: int = 20,
    failure_fraction: float = 0.5,
    rounds: int = 60,
    seed: int = 0,
    mode: str = "exchange",
) -> Scenario:
    """Fig 10: as Fig 8 but the *highest-valued* half of the hosts fails.

    With values uniform on [0, 100) the true average drops from ≈50 to ≈25
    at the failure round, which static Push-Sum never notices.
    """
    values = uniform_values(n_hosts, seed=seed)
    events = [
        FailureEvent(round=failure_round, model=CorrelatedFailure(failure_fraction, highest=True))
    ]
    return Scenario(
        name="correlated-failure",
        values=values,
        environment_factory=lambda: UniformEnvironment(n_hosts),
        events=events,
        rounds=rounds,
        mode=mode,
        description=(
            f"{n_hosts} hosts, values U[0,100), uniform gossip; highest-valued "
            f"{failure_fraction:.0%} removed at round {failure_round} (true average 50 → 25)"
        ),
    )


def counting_failure_scenario(
    n_hosts: int = 10_000,
    *,
    failure_round: int = 20,
    failure_fraction: float = 0.5,
    rounds: int = 40,
    seed: int = 0,
    mode: str = "exchange",
) -> Scenario:
    """Fig 9: every host holds the value 1; half the hosts fail at round 20.

    The correct sum (= network size) halves at the failure round; a sketch
    without decay keeps reporting the old size forever.
    """
    values = constant_values(n_hosts, 1.0)
    events = [
        FailureEvent(round=failure_round, model=UncorrelatedFailure(failure_fraction))
    ]
    return Scenario(
        name="counting-failure",
        values=values,
        environment_factory=lambda: UniformEnvironment(n_hosts),
        events=events,
        rounds=rounds,
        mode=mode,
        description=(
            f"{n_hosts} hosts each holding 1, uniform gossip; "
            f"{failure_fraction:.0%} removed at round {failure_round}"
        ),
    )


def trace_scenario(
    dataset: int = 1,
    *,
    seed: Optional[int] = None,
    round_seconds: float = 30.0,
    group_window_seconds: float = 600.0,
    max_rounds: Optional[int] = None,
    values: Optional[Sequence[float]] = None,
    mode: str = "exchange",
) -> Scenario:
    """Fig 11: replay a (synthetic) Haggle dataset with 30-second gossip rounds.

    Errors are group-relative: each host is compared against the aggregate
    of the hosts reachable from it over the union of the last 10 minutes of
    contacts, exactly as in the paper.  ``seed`` is passed to the trace
    generator verbatim (``None`` keeps the dataset's default seed, the
    committed-figure configuration) and also seeds the value workload.
    """
    trace = haggle_dataset(dataset, seed=seed)
    n_devices = trace.n_devices
    values_seed = 0 if seed is None else seed
    host_values = list(values) if values is not None else uniform_values(n_devices, seed=values_seed)
    if len(host_values) != n_devices:
        raise ValueError(
            f"expected {n_devices} values for dataset {dataset}, got {len(host_values)}"
        )

    def build() -> TraceEnvironment:
        return TraceEnvironment(
            trace,
            round_seconds=round_seconds,
            group_window_seconds=group_window_seconds,
        )

    # Rounds come straight off the trace (one per round_seconds of
    # simulated time, inclusive of t=0) — no need to build and parse a
    # whole throwaway environment just to ask it.
    total_rounds = int(trace.duration // round_seconds) + 1
    rounds = total_rounds if max_rounds is None else min(max_rounds, total_rounds)
    return Scenario(
        name=f"trace-dataset-{dataset}",
        values=host_values,
        environment_factory=build,
        events=[],
        rounds=rounds,
        mode=mode,
        group_relative=True,
        description=(
            f"synthetic Haggle dataset {dataset} ({n_devices} devices, "
            f"{trace.duration / 3600.0:.0f} h), gossip every {round_seconds:.0f} s, "
            f"groups = {group_window_seconds / 60:.0f}-minute edge-union components"
        ),
    )
