"""Host value distributions."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "uniform_values",
    "constant_values",
    "normal_values",
    "zipf_values",
    "clustered_values",
]


def uniform_values(
    n: int, low: float = 0.0, high: float = 100.0, seed: Optional[int] = None
) -> List[float]:
    """Values drawn uniformly from [low, high) — the paper's default workload."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if high < low:
        raise ValueError("high must be >= low")
    rng = np.random.default_rng(seed)
    return [float(value) for value in rng.uniform(low, high, size=n)]


def constant_values(n: int, value: float = 1.0) -> List[float]:
    """Every host holds ``value``; value 1 turns summation into counting."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [float(value)] * n


def normal_values(
    n: int, mean: float = 50.0, std: float = 15.0, seed: Optional[int] = None
) -> List[float]:
    """Gaussian values (e.g. sensor readings around a set point)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if std < 0:
        raise ValueError("std must be non-negative")
    rng = np.random.default_rng(seed)
    return [float(value) for value in rng.normal(mean, std, size=n)]


def zipf_values(
    n: int, exponent: float = 1.5, scale: float = 1.0, seed: Optional[int] = None
) -> List[float]:
    """Heavy-tailed positive values (e.g. per-device play counts)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if exponent <= 1.0:
        raise ValueError("zipf exponent must be > 1")
    rng = np.random.default_rng(seed)
    return [float(value) * scale for value in rng.zipf(exponent, size=n)]


def clustered_values(
    n: int,
    cluster_means: Sequence[float] = (10.0, 50.0, 90.0),
    std: float = 5.0,
    seed: Optional[int] = None,
) -> List[float]:
    """Values clustered around a few means (e.g. taste-in-music communities).

    Hosts are split evenly (up to rounding) across the clusters, which makes
    correlated failures — "everyone in cluster 3 left the bar" — especially
    damaging to static protocols.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not cluster_means:
        raise ValueError("need at least one cluster mean")
    if std < 0:
        raise ValueError("std must be non-negative")
    rng = np.random.default_rng(seed)
    assignments = rng.integers(0, len(cluster_means), size=n)
    means = np.asarray(cluster_means, dtype=float)[assignments]
    return [float(value) for value in rng.normal(means, std)]
