"""Workloads: host value distributions and prebuilt paper scenarios.

A *workload* is the assignment of local values to hosts.  The paper's
default workload draws values uniformly from [0, 100); counting workloads
assign every host the value 1; the motivating applications (song ratings,
road-hazard sensors) suggest skewed and clustered distributions which the
extra generators here provide for sensitivity studies.

:mod:`repro.workloads.scenarios` assembles complete experiment
configurations (values + environment + events + protocol parameters)
matching each evaluation figure, so the experiment harness, the examples
and the tests all describe runs the same way.
"""

from repro.workloads.scenarios import (
    Scenario,
    correlated_failure_scenario,
    counting_failure_scenario,
    trace_scenario,
    uncorrelated_failure_scenario,
)
from repro.workloads.values import (
    clustered_values,
    constant_values,
    normal_values,
    uniform_values,
    zipf_values,
)

__all__ = [
    "Scenario",
    "clustered_values",
    "constant_values",
    "correlated_failure_scenario",
    "counting_failure_scenario",
    "normal_values",
    "trace_scenario",
    "uncorrelated_failure_scenario",
    "uniform_values",
    "zipf_values",
]
