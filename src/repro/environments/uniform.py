"""Uniform (fully connected) gossip environment."""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.environments.base import GossipEnvironment

__all__ = ["UniformEnvironment"]


class UniformEnvironment(GossipEnvironment):
    """Every live host may gossip with every other live host.

    This is the idealised model used for the large-scale experiments in the
    paper (Figs 6, 8, 9, 10): peer selection is uniform over the live
    population.  Peer selection is O(count) per call; the engine passes the
    live set, so failed hosts are never selected.

    Parameters
    ----------
    n:
        Initial number of hosts (informational; the live set passed by the
        engine is authoritative).
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = int(n)

    def select_peers(
        self,
        host_id: int,
        alive: Set[int],
        round_index: int,
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        population = len(alive)
        if population <= 1 or count <= 0:
            return []
        # Rejection-sample identifiers: the alive set is usually dense, and
        # converting it to a list every call would dominate the round cost
        # for large populations.  Fall back to explicit sampling when the
        # rejection approach would thrash (tiny alive sets).
        alive_list = None
        peers: List[int] = []
        seen = {host_id}
        attempts = 0
        max_attempts = 16 * max(1, count)
        while len(peers) < min(count, population - 1):
            attempts += 1
            if attempts > max_attempts:
                if alive_list is None:
                    alive_list = [h for h in alive if h not in seen]
                remaining = min(count - len(peers), len(alive_list))
                peers.extend(self._sample_distinct(alive_list, remaining, rng))
                break
            candidate = int(rng.integers(0, self.n)) if self.n > population else None
            if candidate is None or candidate not in alive or candidate in seen:
                # Either the id space is dense (sample directly from alive)
                # or the rejection draw missed; try a direct draw from alive.
                if alive_list is None:
                    alive_list = list(alive)
                candidate = alive_list[int(rng.integers(0, len(alive_list)))]
                if candidate in seen:
                    continue
            peers.append(candidate)
            seen.add(candidate)
        return peers

    def register_host(self, host_id: int) -> None:
        self.n = max(self.n, host_id + 1)
