"""The gossip-environment interface consumed by the simulation engine."""

from __future__ import annotations

import abc
from typing import List, Sequence, Set

import numpy as np

__all__ = ["GossipEnvironment"]


class GossipEnvironment(abc.ABC):
    """Decides which peers a host may gossip with at a given round.

    The engine calls :meth:`select_peers` once per live host per round.  An
    environment may also *provide groups* — a partition of the live hosts
    into "nearby" clusters — in which case trace-style experiments can
    measure each host's error against its own group's aggregate (Fig 11).

    Attributes
    ----------
    provides_groups:
        True when :meth:`groups` returns a meaningful partition rather than
        the single all-hosts group.
    """

    provides_groups: bool = False

    @abc.abstractmethod
    def select_peers(
        self,
        host_id: int,
        alive: Set[int],
        round_index: int,
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Select up to ``count`` gossip peers for ``host_id``.

        The returned peers must be live and distinct from ``host_id``.  An
        isolated host gets an empty list and simply skips the round — a
        situation that arises constantly in the trace-driven environment.
        """

    def neighbors(self, host_id: int, alive: Set[int], round_index: int) -> List[int]:
        """All hosts ``host_id`` could possibly gossip with this round.

        The default assumes full connectivity.  Overlay baselines (TAG) use
        this to build spanning trees over the current communication graph.
        """
        return [other for other in alive if other != host_id]

    def groups(self, alive: Set[int], round_index: int) -> List[Set[int]]:
        """Partition of the live hosts into "nearby" groups.

        The default is a single group containing everybody, which is correct
        for fully connected environments.
        """
        return [set(alive)] if alive else []

    def register_host(self, host_id: int) -> None:
        """Called by the engine when a host joins after construction.

        Environments with per-host structure (positions, trace identity)
        override this; the default accepts the new host silently.
        """

    # ------------------------------------------------------------------ util
    @staticmethod
    def _sample_distinct(
        candidates: Sequence[int], count: int, rng: np.random.Generator
    ) -> List[int]:
        """Sample up to ``count`` distinct entries of ``candidates``.

        The returned order is always random — even when every candidate is
        taken.  Callers routinely use only the first entry (exchange mode
        gossips with ``peers[0]``), so returning a low-degree host's
        candidates in adjacency order would make it gossip with the same
        neighbour every round.
        """
        if not candidates or count <= 0:
            return []
        size = min(count, len(candidates))
        picks = rng.choice(len(candidates), size=size, replace=False)
        return [candidates[int(index)] for index in picks]
