"""Graph-restricted gossip environment."""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.environments.base import GossipEnvironment
from repro.topology.connectivity import connected_components

__all__ = ["NeighborhoodEnvironment"]

Adjacency = Dict[int, Set[int]]


class NeighborhoodEnvironment(GossipEnvironment):
    """Hosts may only gossip with their neighbours in a static graph.

    This models low-connectivity deployments (sensor grids, sparse wireless
    meshes).  Groups are the connected components of the live-host-induced
    subgraph, so group-relative error reporting works exactly as in the
    trace environment.

    Parameters
    ----------
    adjacency:
        Undirected adjacency map (see :mod:`repro.topology.graphs`).
    """

    provides_groups = True

    def __init__(self, adjacency: Adjacency):
        self.adjacency: Adjacency = {node: set(neighbors) for node, neighbors in adjacency.items()}
        # Symmetrise defensively: the engine assumes undirected links.
        for node, neighbors in list(self.adjacency.items()):
            for neighbor in neighbors:
                self.adjacency.setdefault(neighbor, set()).add(node)

    def select_peers(
        self,
        host_id: int,
        alive: Set[int],
        round_index: int,
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        candidates = [n for n in self.adjacency.get(host_id, ()) if n in alive and n != host_id]
        return self._sample_distinct(candidates, count, rng)

    def neighbors(self, host_id: int, alive: Set[int], round_index: int) -> List[int]:
        return [n for n in self.adjacency.get(host_id, ()) if n in alive and n != host_id]

    def groups(self, alive: Set[int], round_index: int) -> List[Set[int]]:
        return connected_components(self.adjacency, alive=set(alive))

    def register_host(self, host_id: int) -> None:
        self.adjacency.setdefault(host_id, set())

    def connect(self, a: int, b: int) -> None:
        """Add an undirected edge (used by scenarios that densify over time)."""
        if a == b:
            raise ValueError("self-loops are not allowed")
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def disconnect(self, a: int, b: int) -> None:
        """Remove an undirected edge if present."""
        self.adjacency.get(a, set()).discard(b)
        self.adjacency.get(b, set()).discard(a)
