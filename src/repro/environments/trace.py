"""Trace-driven gossip environment.

This environment replays a contact trace: at round ``t`` a host may gossip
only with devices currently within wireless range according to the trace.
It also implements the paper's group definition for error reporting:
"two hosts are nearby if there exists a path from one to the other over the
union of all edges that have existed in the last 10 minutes", and a host's
error is measured against the aggregate of its group.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.environments.base import GossipEnvironment
from repro.mobility.traces import ContactTrace
from repro.topology.connectivity import connected_components

__all__ = ["TraceEnvironment"]

Adjacency = Dict[int, Set[int]]


class TraceEnvironment(GossipEnvironment):
    """Gossip restricted to whoever the contact trace says is in range.

    Parameters
    ----------
    trace:
        The contact trace to replay (real CRAWDAD export or synthetic).
    round_seconds:
        Simulated seconds per gossip round.  The paper performs "one round
        of gossip every thirty seconds of simulated time".
    group_window_seconds:
        Width of the trailing window whose edge-union defines groups
        (600 s = 10 minutes in the paper).
    broadcast:
        When true, a host gossips with *all* hosts currently in range rather
        than a single random one — modelling the paper's observation that
        "wireless devices can communicate with all devices in range at
        roughly constant cost".  Defaults to false (one peer per round).
    """

    provides_groups = True

    def __init__(
        self,
        trace: ContactTrace,
        *,
        round_seconds: float = 30.0,
        group_window_seconds: float = 600.0,
        broadcast: bool = False,
    ):
        if round_seconds <= 0:
            raise ValueError("round_seconds must be positive")
        if group_window_seconds < 0:
            raise ValueError("group_window_seconds must be non-negative")
        self.trace = trace
        self.round_seconds = float(round_seconds)
        self.group_window_seconds = float(group_window_seconds)
        self.broadcast = bool(broadcast)
        self._adjacency_cache: Dict[int, Adjacency] = {}
        self._group_cache: Dict[int, List[Set[int]]] = {}

    # ------------------------------------------------------------------ time
    def time_of_round(self, round_index: int) -> float:
        """Simulated time (seconds) at which ``round_index`` takes place."""
        return round_index * self.round_seconds

    def total_rounds(self) -> int:
        """Number of rounds needed to replay the whole trace."""
        return int(self.trace.duration // self.round_seconds) + 1

    # ------------------------------------------------------------- adjacency
    def _adjacency(self, round_index: int) -> Adjacency:
        if round_index not in self._adjacency_cache:
            # Keep the cache bounded: traces span thousands of rounds.
            if len(self._adjacency_cache) >= 4096:
                self._adjacency_cache.clear()
            self._adjacency_cache[round_index] = self.trace.adjacency_at(
                self.time_of_round(round_index)
            )
        return self._adjacency_cache[round_index]

    def select_peers(
        self,
        host_id: int,
        alive: Set[int],
        round_index: int,
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        adjacency = self._adjacency(round_index)
        candidates = [n for n in adjacency.get(host_id, ()) if n in alive and n != host_id]
        if not candidates:
            return []
        if self.broadcast:
            return candidates
        return self._sample_distinct(candidates, count, rng)

    def neighbors(self, host_id: int, alive: Set[int], round_index: int) -> List[int]:
        adjacency = self._adjacency(round_index)
        return [n for n in adjacency.get(host_id, ()) if n in alive]

    # ----------------------------------------------------------------- groups
    def groups(self, alive: Set[int], round_index: int) -> List[Set[int]]:
        if round_index not in self._group_cache:
            if len(self._group_cache) >= 4096:
                self._group_cache.clear()
            time = self.time_of_round(round_index)
            if self.group_window_seconds > 0:
                union = self.trace.adjacency_between(
                    max(0.0, time - self.group_window_seconds), time + 1e-9
                )
            else:
                union = self._adjacency(round_index)
            self._group_cache[round_index] = connected_components(union)
        components = self._group_cache[round_index]
        alive_set = set(alive)
        groups = [component & alive_set for component in components]
        groups = [group for group in groups if group]
        # Live hosts absent from the trace union (never seen any contact yet)
        # are their own singleton groups.
        covered = set().union(*groups) if groups else set()
        for host in alive_set - covered:
            groups.append({host})
        return groups

    def register_host(self, host_id: int) -> None:
        if host_id >= self.trace.n_devices:
            raise ValueError(
                "TraceEnvironment population is fixed by the trace "
                f"({self.trace.n_devices} devices); cannot register host {host_id}"
            )
