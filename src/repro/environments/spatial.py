"""Spatial gossip on a grid with 1/d² multi-hop peer selection.

Section IV-A of the paper notes that logarithmic gossip convergence can be
recovered even when hosts are laid out on a D-dimensional grid and can
only reach their immediate neighbours, provided occasional long-distance
exchanges are performed: the source picks a distance ``d`` with
probability proportional to ``1/d²`` and reaches a peer roughly ``d`` hops
away via a random walk (Kempe, Kleinberg, Demers — spatial gossip).  This
environment implements exactly that peer-selection rule on a 2-D grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.environments.base import GossipEnvironment
from repro.topology.connectivity import connected_components
from repro.topology.graphs import grid_graph, grid_positions

__all__ = ["SpatialGridEnvironment"]


class SpatialGridEnvironment(GossipEnvironment):
    """Grid-restricted gossip with 1/d² long-distance random walks.

    Parameters
    ----------
    width, height:
        Grid dimensions; hosts ``0..width*height-1`` occupy the grid
        row-major.
    max_distance:
        Upper bound on the sampled walk length ``d``; defaults to the grid
        diameter.
    walk:
        When true (default), the long-distance peer is found by an actual
        random walk of length ``d`` over live hosts — the faithful model of
        multi-hop forwarding, whose endpoint distribution is only
        approximately distance-``d``.  When false, the peer is sampled
        uniformly from the live hosts at L1 distance exactly ``d`` (an
        idealisation that is faster and slightly better mixed).
    """

    provides_groups = True

    def __init__(
        self,
        width: int,
        height: int,
        *,
        max_distance: Optional[int] = None,
        walk: bool = True,
    ):
        if width < 1 or height < 1:
            raise ValueError("grid dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self.positions: Dict[int, Tuple[int, int]] = grid_positions(width, height)
        self.adjacency = grid_graph(width, height)
        diameter = (width - 1) + (height - 1)
        self.max_distance = int(max_distance) if max_distance is not None else max(1, diameter)
        if self.max_distance < 1:
            raise ValueError("max_distance must be >= 1")
        self.walk = bool(walk)
        # Pre-compute the 1/d^2 distance distribution.
        distances = np.arange(1, self.max_distance + 1, dtype=float)
        weights = 1.0 / distances**2
        self._distance_probabilities = weights / weights.sum()

    # ------------------------------------------------------------------ peers
    def _sample_distance(self, rng: np.random.Generator) -> int:
        return int(rng.choice(len(self._distance_probabilities), p=self._distance_probabilities)) + 1

    def _random_walk(
        self, start: int, length: int, alive: Set[int], rng: np.random.Generator
    ) -> Optional[int]:
        """Endpoint of a ``length``-step walk over live hosts, or ``None``.

        A walk that dead-ends before completing its sampled length must
        *fail* the attempt (so the caller re-draws a distance), not return
        the dead-end host: keeping truncated endpoints over-weights short
        distances next to failed regions and distorts the 1/d² long-link
        distribution.
        """
        current = start
        for _ in range(length):
            steps = [n for n in self.adjacency[current] if n in alive]
            if not steps:
                return None
            current = steps[int(rng.integers(0, len(steps)))]
        return current if current != start else None

    def _peer_at_distance(
        self, start: int, distance: int, alive: Set[int], rng: np.random.Generator
    ) -> Optional[int]:
        col, row = self.positions[start]
        ring = [
            host
            for host, (c, r) in self.positions.items()
            if abs(c - col) + abs(r - row) == distance and host in alive
        ]
        if not ring:
            return None
        return ring[int(rng.integers(0, len(ring)))]

    def select_peers(
        self,
        host_id: int,
        alive: Set[int],
        round_index: int,
        count: int,
        rng: np.random.Generator,
    ) -> List[int]:
        peers: List[int] = []
        attempts = 0
        while len(peers) < count and attempts < 4 * max(1, count):
            attempts += 1
            distance = self._sample_distance(rng)
            if self.walk:
                peer = self._random_walk(host_id, distance, alive, rng)
            else:
                peer = self._peer_at_distance(host_id, distance, alive, rng)
            if peer is not None and peer != host_id and peer in alive and peer not in peers:
                peers.append(peer)
        return peers

    def neighbors(self, host_id: int, alive: Set[int], round_index: int) -> List[int]:
        return [n for n in self.adjacency.get(host_id, ()) if n in alive]

    def groups(self, alive: Set[int], round_index: int) -> List[Set[int]]:
        return connected_components(self.adjacency, alive=set(alive))

    def register_host(self, host_id: int) -> None:
        if host_id not in self.positions:
            raise ValueError(
                "SpatialGridEnvironment has a fixed population; "
                f"cannot register host {host_id} beyond the {self.width}x{self.height} grid"
            )
