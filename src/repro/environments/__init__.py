"""Gossip environments: how pairs of hosts are selected each round.

The paper distinguishes gossip *protocols* (what two hosts exchange) from
gossip *environments* (how hosts are paired).  This package implements the
environments used in the evaluation plus two generalisations:

* :class:`UniformEnvironment` — every live host can talk to every other
  live host (the idealised 100 000-host setting of Figs 8–10);
* :class:`NeighborhoodEnvironment` — peers restricted to a static graph
  (grids, random geometric graphs, …);
* :class:`SpatialGridEnvironment` — grid-restricted gossip augmented with
  the paper's 1/d² multi-hop random walks, which recover near-uniform
  mixing from purely local links (Section IV-A);
* :class:`TraceEnvironment` — peers restricted to whoever is currently in
  wireless range according to a contact trace, with the paper's
  10-minute-union group definition (Fig 11).
"""

from repro.environments.base import GossipEnvironment
from repro.environments.neighborhood import NeighborhoodEnvironment
from repro.environments.spatial import SpatialGridEnvironment
from repro.environments.trace import TraceEnvironment
from repro.environments.uniform import UniformEnvironment

__all__ = [
    "GossipEnvironment",
    "NeighborhoodEnvironment",
    "SpatialGridEnvironment",
    "TraceEnvironment",
    "UniformEnvironment",
]
