"""The vectorised event calendar: bucketed batch execution of ``engine="events"``.

The agent event engine (:class:`repro.events.EventSimulation`) pops one
calendar entry at a time — perfect fidelity, agent prices.  This module
trades *interior-of-bucket* timing resolution for NumPy batch execution:

1. Simulated time is cut into buckets of width ``q`` (the *batch
   quantum*): by default the tick grid — ``min(sample_interval, shortest
   clock period)``, never coarser than the sample interval and never more
   than 64 buckets per sample — or ``engine_params["batch_quantum"]``.
2. All TICK events landing in one bucket drain as *one* subset-masked
   kernel call (:meth:`~repro.simulator.vectorized.VectorizedPushSumRevert.step_subset`),
   with reversion applied per ticking host, exactly one tick's worth.
3. All DELIVER events maturing in one bucket apply as one scatter-add
   (:meth:`~...VectorizedPushSumRevert.apply_deliveries`) or one batch of
   pairwise merges (:meth:`~...VectorizedPushSumRevert.merge_pairs`).
4. The mass ledger balances per *bucket* (or per sample), not per event.

Within a bucket ``((b-1)q, bq]`` every event executes at the bucket end
``bq``, ordered exactly like the agent calendar's same-timestamp
priorities: matured deliveries from earlier buckets, then membership,
then boundary deliveries, then ticks, then the sample.  At the
synchronized anchor (unit rates, unit sample interval, instant network)
each bucket collapses to precisely the round engine's vectorised
sequence — apply events, ``kernel.step()``, record — with identical RNG
consumption, so the run is bit-identical to ``engine="rounds"`` /
``backend="vectorized"`` (DESIGN.md §14).  Heterogeneous-rate runs agree
with the agent event engine in distribution, not bit for bit.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.metrics.recorder import SeriesRecorder
from repro.network import MassLedger
from repro.obs.probe import NULL_PROBE
from repro.simulator.result import SimulationResult
from repro.simulator.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.spec import ScenarioSpec

__all__ = ["run_vectorized_events"]

#: Same-timestamp tolerance as the agent calendar (events/engine.py).
_TIME_EPS = 1e-9

#: Hard cap on buckets per sample interval: finer clock grids coarsen to
#: this rather than degenerating into per-event buckets.
_MAX_BUCKETS_PER_SAMPLE = 64


def _draw_rates(config, rng: np.random.Generator, count: int) -> np.ndarray:
    """Batched counterpart of :func:`repro.events.clocks.draw_rate`.

    Same distributions and parameter defaults; one vectorised draw per
    batch instead of one scalar draw per host (distribution-identical,
    not stream-identical, to the agent clock draws).
    """
    distribution = config.get("distribution", "uniform")
    if distribution == "uniform":
        return np.full(count, float(config.get("rate", 1.0)))
    if distribution == "heterogeneous":
        fast = float(config["fast"])
        slow = float(config["slow"])
        fraction = float(config.get("fast_fraction", 0.5))
        return np.where(rng.random(count) < fraction, fast, slow)
    # lognormal (spec validation rejects everything else)
    rates = rng.lognormal(float(config.get("mean", 0.0)), float(config.get("sigma", 0.5)), count)
    minimum = config.get("min_rate")
    if minimum is not None:
        rates = np.maximum(rates, float(minimum))
    return rates


def _delay_sampler(network_model, rng: np.random.Generator):
    """Vectorised ``plan_seconds`` for the latency model: k delays at once."""
    distribution = network_model.distribution
    max_delay = float(network_model.max_delay)
    if distribution == "fixed":
        delay = min(float(network_model.delay), max_delay)

        def sample(k: int) -> np.ndarray:
            return np.full(k, delay)
    elif distribution == "uniform":
        low, high = network_model.low, network_model.high

        def sample(k: int) -> np.ndarray:
            return np.minimum(rng.integers(low, high + 1, size=k).astype(float), max_delay)
    else:  # lognormal

        def sample(k: int) -> np.ndarray:
            return np.minimum(rng.lognormal(network_model.mean, network_model.sigma, k), max_delay)

    return sample


class _ClockGrid:
    """Array-of-clocks: ``next_time[i] = origins[i] + next_index[i] * periods[i]``.

    The vectorised form of :class:`repro.events.clocks.HostClock` — same
    grid arithmetic (multiplication from a stored origin, so float error
    never accumulates), same synchronized-join snapping, grown in place
    when hosts join.
    """

    def __init__(self, rates_config, synchronized: bool, rng: np.random.Generator, count: int):
        self._config = rates_config
        self._synchronized = bool(synchronized)
        self._rng = rng
        self.periods = np.empty(0, dtype=float)
        self.origins = np.empty(0, dtype=float)
        self.next_index = np.empty(0, dtype=np.int64)
        self.grow(count, join_time=0.0)

    def grow(self, count: int, *, join_time: float) -> None:
        if count <= 0:
            return
        periods = 1.0 / _draw_rates(self._config, self._rng, count)
        if self._synchronized:
            origins = np.zeros(count, dtype=float)
            first = np.ceil(join_time / periods - _TIME_EPS).astype(np.int64)
            next_index = np.maximum(1, first)
        else:
            origins = join_time + periods * (1.0 - self._rng.random(count))
            next_index = np.zeros(count, dtype=np.int64)
        self.periods = np.concatenate([self.periods, periods])
        self.origins = np.concatenate([self.origins, origins])
        self.next_index = np.concatenate([self.next_index, next_index])

    def next_times(self) -> np.ndarray:
        return self.origins + self.next_index * self.periods

    def advance(self, host_idx: np.ndarray) -> None:
        self.next_index[host_idx] += 1


def run_vectorized_events(backend, spec: "ScenarioSpec", probe=NULL_PROBE) -> SimulationResult:
    """Execute an ``engine="events"`` spec on the vectorised backend.

    ``backend`` is the :class:`~repro.api.backends.VectorizedBackend`
    instance (kernel construction, membership-event application and round
    recording are reused from it verbatim — that is what keeps the
    synchronized anchor bit-identical to the round engine's vectorised
    path).  Capability screening already happened in ``backend.run``.
    """
    from repro.api.backends import _aggregate_kind, _expand_events

    settings = spec.engine_settings()
    duration = settings["duration"]
    sample_interval = settings["sample_interval"]
    mass_check = settings["mass_check"]

    with probe.span("build", backend=backend.name, engine="events"):
        kernel = backend.build_kernel(spec)
        streams = RandomStreams(spec.seed)
        clocks = _ClockGrid(
            settings["rates"], settings["synchronized"], streams.get("clocks"), kernel.n
        )
        network_model = None if spec.network == "perfect" else spec.build_network()
        has_latency = bool(getattr(network_model, "has_latency", False))
        sample_delays = (
            _delay_sampler(network_model, streams.get("network")) if has_latency else None
        )

    # ---------------------------------------------------------------- quantum
    base = settings["batch_quantum"]
    if base is None:
        base = min(sample_interval, float(clocks.periods.min()))
    ratio = max(1, int(math.ceil(sample_interval / float(base) - _TIME_EPS)))
    ratio = min(ratio, _MAX_BUCKETS_PER_SAMPLE)
    quantum = sample_interval / ratio
    n_samples = int(math.floor(duration / sample_interval + _TIME_EPS))
    total_buckets = int(math.ceil(duration / quantum - _TIME_EPS))

    # Membership events fire at (round + 1) * sample_interval, exactly like
    # the agent calendar; that instant is always a bucket boundary.
    membership: Dict[int, List[dict]] = {}
    for round_idx, entries in _expand_events(spec).items():
        fire_at = (round_idx + 1) * sample_interval
        if fire_at > duration + _TIME_EPS:
            continue
        bucket = (round_idx + 1) * ratio
        if bucket <= total_buckets:
            membership.setdefault(bucket, []).extend(entries)

    values = getattr(kernel, "initial", None)
    if values is None and any(
        entry["event"] in ("failure", "churn") and entry["model"] == "correlated"
        for entry in spec.events
    ):  # pragma: no cover - push-sum-revert always carries values
        values = spec.build_values()
    values_array = np.asarray(values, dtype=float) if values is not None else None

    result = SimulationResult(
        protocol_name=spec.protocol,
        aggregate=_aggregate_kind(spec),
        seed=spec.seed,
        metadata={
            "mode": spec.mode,
            "environment": "UniformEnvironment",
            "n_initial": spec.n_hosts,
            "protocol_params": dict(spec.protocol_params),
            "backend": backend.name,
            "kernel": type(kernel).__name__,
            "engine": {
                "name": "events",
                "duration": duration,
                "sample_interval": sample_interval,
                "rates": dict(settings["rates"]),
                "synchronized": settings["synchronized"],
                "mass_check": mass_check,
                "batch_quantum": quantum,
            },
        },
    )
    if spec.network != "perfect":
        result.metadata["network"] = {"name": spec.network, **dict(spec.network_params)}

    # ------------------------------------------------------------ run state
    #: bucket -> list of in-flight batches; "push" batches carry mass,
    #: "exchange" batches are deferred atomic merges (mass stays at hosts).
    pending: Dict[int, List[tuple]] = {}
    in_flight_mass = 0.0
    in_flight_count = 0
    ledger: Optional[MassLedger] = None
    booked_injected = booked_lost = 0.0
    if mass_check != "off":
        ledger = MassLedger()
        ledger.open(float(kernel.weight[kernel.alive].sum()))
        booked_injected = kernel.mass_injected
        booked_lost = kernel.mass_lost

    def sync_ledger() -> None:
        """Book the kernel's own mass movements (reverts, lossy pushes)."""
        nonlocal booked_injected, booked_lost
        if kernel.mass_injected != booked_injected:
            ledger.record_injected(kernel.mass_injected - booked_injected)
            booked_injected = kernel.mass_injected
        if kernel.mass_lost != booked_lost:
            ledger.record_lost(kernel.mass_lost - booked_lost)
            booked_lost = kernel.mass_lost

    def observed_mass() -> float:
        return float(kernel.weight[kernel.alive].sum()) + in_flight_mass

    def sample_bin(time: float) -> int:
        return max(0, math.ceil(time / sample_interval - _TIME_EPS) - 1)

    def defer(kind: str, bucket_now: int, mature: np.ndarray, *arrays: np.ndarray) -> None:
        """Queue a delivery batch by maturity bucket (never the current one)."""
        buckets = np.maximum(
            bucket_now + 1, np.ceil(mature / quantum - _TIME_EPS).astype(np.int64)
        )
        for dest in np.unique(buckets):
            sel = buckets == dest
            pending.setdefault(int(dest), []).append(
                (kind, mature[sel], *(a[sel] for a in arrays))
            )

    def deliver_push(targets: np.ndarray, weight: np.ndarray, total: np.ndarray) -> None:
        nonlocal in_flight_mass, in_flight_count
        in_flight_mass -= float(weight.sum())
        in_flight_count -= int(targets.size)
        alive = kernel.alive[targets]
        dead = int(targets.size - int(alive.sum()))
        if dead:
            # The target crashed while the half was in flight: its mass
            # leaves the system, exactly like a lost message.
            kernel.mass_lost += float(weight[~alive].sum())
            kernel.messages_lost += dead
        if alive.any():
            kernel.apply_deliveries(targets[alive], weight[alive], total[alive])
            kernel.messages_delivered += int(alive.sum())

    def deliver_exchange(left: np.ndarray, right: np.ndarray) -> None:
        nonlocal in_flight_count
        in_flight_count -= 2 * int(left.size)
        ok = kernel.alive[left] & kernel.alive[right]
        kernel.messages_lost += 2 * int(left.size - int(ok.sum()))
        if ok.any():
            a, b = left[ok], right[ok]
            kernel.merge_pairs(a, b)
            kernel.messages_delivered += 2 * int(a.size)
            # Duplicates are fine: the refresh is a plain fancy-index
            # assignment, so deduplicating would only cost a sort.
            kernel._refresh_last_estimates(np.concatenate([a, b]))

    def drain(batches: List[tuple]) -> None:
        for batch in batches:
            if batch[0] == "push":
                deliver_push(batch[2], batch[3], batch[4])
            else:
                deliver_exchange(batch[2], batch[3])

    def split_boundary(batches: List[tuple], boundary: float):
        """Partition batches into (before ``boundary``, at ``boundary``)."""
        interior: List[tuple] = []
        at_edge: List[tuple] = []
        for batch in batches:
            mask = batch[1] < boundary - _TIME_EPS
            if mask.all():
                interior.append(batch)
            elif not mask.any():
                at_edge.append(batch)
            else:
                interior.append(tuple([batch[0]] + [a[mask] for a in batch[1:]]))
                at_edge.append(tuple([batch[0]] + [a[~mask] for a in batch[1:]]))
        return interior, at_edge

    def process_ticks(bucket: int, time: float, tick_idx: np.ndarray,
                      tick_times: np.ndarray) -> None:
        """One batched gossip step for the bucket's ticking hosts."""
        nonlocal in_flight_mass, in_flight_count
        n_alive = int(kernel.alive.sum())
        if not has_latency:
            if tick_idx.size == n_alive and not pending:
                # Whole live population ticking over an instant network:
                # exactly one lockstep round — the bit-identity fast path.
                kernel.step()
            else:
                kernel.step_subset(tick_idx)
            return
        alive_idx = np.nonzero(kernel.alive)[0]
        if alive_idx.size < 2:
            if kernel.reversion > 0.0:
                kernel.revert_subset(tick_idx)
                kernel._refresh_last_estimates(tick_idx)
            return
        if kernel.mode == "pushpull":
            # Partner uniformly among the other live hosts; the exchange
            # completes after the request and reply legs both arrive, as
            # one atomic merge (masses stay home until then).
            pos = np.searchsorted(alive_idx, tick_idx)
            offset = kernel.rng.integers(1, alive_idx.size, size=tick_idx.size)
            partners = alive_idx[(pos + offset) % alive_idx.size]
            kernel.bytes_sent += 32 * int(tick_idx.size)
            legs = sample_delays(2 * tick_idx.size)
            delay = legs[: tick_idx.size] + legs[tick_idx.size :]
            now = delay <= _TIME_EPS
            if now.any():
                kernel.merge_pairs(tick_idx[now], partners[now])
                kernel.messages_delivered += 2 * int(now.sum())
            later = ~now
            if later.any():
                in_flight_count += 2 * int(later.sum())
                defer("exchange", bucket, tick_times[later] + delay[later],
                      tick_idx[later], partners[later])
            if kernel.reversion > 0.0:
                kernel.revert_subset(tick_idx)
            kernel._refresh_last_estimates(np.concatenate([tick_idx, partners[now]]))
        else:  # push
            targets = alive_idx[kernel.rng.integers(0, alive_idx.size, size=tick_idx.size)]
            kernel.bytes_sent += 16 * int(np.count_nonzero(targets != tick_idx))
            out_weight, out_total = kernel.emit_push(tick_idx)
            delay = sample_delays(tick_idx.size)
            now = delay <= _TIME_EPS
            if now.any():
                kernel.apply_deliveries(targets[now], out_weight[now], out_total[now])
                kernel.messages_delivered += int(now.sum())
            later = ~now
            if later.any():
                in_flight_mass += float(out_weight[later].sum())
                in_flight_count += int(later.sum())
                defer("push", bucket, tick_times[later] + delay[later],
                      targets[later], out_weight[later], out_total[later])
            if kernel.reversion > 0.0:
                kernel.revert_subset(tick_idx)
            kernel._refresh_last_estimates(np.concatenate([tick_idx, targets[now]]))

    # --------------------------------------------------------------- the loop
    prev_delivered = prev_lost = prev_bytes = 0
    series = SeriesRecorder(name=spec.name)
    kernel.probe = probe
    try:
        with probe.span("execute", backend=backend.name, engine="events"):
            for bucket in range(1, total_buckets + 1):
                time = bucket * quantum
                batches = pending.pop(bucket, None)
                interior = at_edge = None
                if batches:
                    interior, at_edge = split_boundary(batches, time)
                with probe.span("drain", bucket=bucket):
                    if interior:
                        drain(interior)
                    for entry in membership.get(bucket, ()):
                        before = float(kernel.weight[kernel.alive].sum())
                        old_n = kernel.n
                        values_array = backend._apply_event(kernel, entry, values_array)
                        if kernel.n > old_n:
                            clocks.grow(kernel.n - old_n, join_time=time)
                        if ledger is not None:
                            after = float(kernel.weight[kernel.alive].sum())
                            ledger.record_injected(after - before)
                        if probe.enabled and entry["event"] in ("join", "failure"):
                            probe.event(
                                "membership",
                                action="join" if entry["event"] == "join" else "fail",
                                round=sample_bin(time),
                            )
                    if at_edge:
                        drain(at_edge)
                cap = min(time, duration) + _TIME_EPS
                with probe.span("ticks", bucket=bucket):
                    while True:
                        next_times = clocks.next_times()
                        due = kernel.alive & (next_times <= cap)
                        tick_idx = np.nonzero(due)[0]
                        if tick_idx.size == 0:
                            break
                        process_ticks(bucket, time, tick_idx, next_times[tick_idx])
                        clocks.advance(tick_idx)
                if ledger is not None and mass_check == "event":
                    sync_ledger()
                    ledger.check(observed_mass(), round_index=sample_bin(time))
                if bucket % ratio:
                    continue
                sample_index = bucket // ratio
                if sample_index > n_samples:
                    continue
                if ledger is not None and mass_check == "sample":
                    sync_ledger()
                    ledger.check(observed_mass(), round_index=sample_index - 1)
                record = backend._record_round(kernel, spec, sample_index - 1)
                record.time = sample_index * sample_interval
                delivered = int(kernel.messages_delivered)
                lost = int(kernel.messages_lost)
                bytes_sent = int(kernel.bytes_sent)
                record.messages_delivered = delivered - prev_delivered
                record.messages_lost = lost - prev_lost
                record.bytes_sent = bytes_sent - prev_bytes
                record.messages_in_flight = in_flight_count
                prev_delivered, prev_lost, prev_bytes = delivered, lost, bytes_sent
                series.record_error(
                    sample_index - 1,
                    record.max_abs_error,
                    record.truth,
                    mean_estimate=record.mean_estimate,
                    population=record.n_alive,
                    messages_delivered=record.messages_delivered,
                    messages_lost=record.messages_lost,
                    bytes_sent=record.bytes_sent,
                )
                result.append(record)
                if probe.enabled:
                    probe.event(
                        "round_end",
                        round=sample_index - 1,
                        n_alive=record.n_alive,
                        max_abs_error=record.max_abs_error,
                        messages_delivered=record.messages_delivered,
                        messages_lost=record.messages_lost,
                        bytes_sent=record.bytes_sent,
                    )
                    probe.gauge("n_alive", record.n_alive)
    finally:
        kernel.probe = NULL_PROBE
    result.metadata["delivery_series"] = {
        key: list(values) for key, values in series.extra.items()
    }
    return result
