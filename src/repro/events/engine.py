"""The continuous-time event-driven simulation engine.

:class:`EventSimulation` replaces the round engine's lockstep loop with a
global :class:`~repro.events.calendar.EventCalendar`: each host gossips
on its own :class:`~repro.events.clocks.HostClock`, messages are
timestamped and travel through a time-keyed
:class:`~repro.network.DeliveryQueue`, and metrics are *sampled* at a
fixed simulated-time cadence so the result looks exactly like a round
engine result to every downstream layer (metrics, analysis, render,
store).

Event kinds (priority order within one instant — see
:mod:`repro.events.calendar`):

1. **membership** — scheduled failure/join/value-change events; the
   event scheduled for round *r* fires at time ``(r + 1) * S`` (sample
   interval ``S``), which is the instant whose sample records round *r*
   — exactly the round engine's apply-before-the-round ordering.
2. **deliver** — matured in-flight payloads move into pending inboxes;
   exchange request/reply legs progress.
3. **tick** — one host performs its gossip action via its mode's
   :mod:`~repro.events.adapters` adapter, then reschedules its clock.
4. **sample** — sample *j* fires at ``j * S`` and appends a
   :class:`~repro.simulator.RoundRecord` with ``round_index = j - 1``
   and ``time = j * S``.

Mass conservation is enforced continuously: the engine keeps running
totals of the mass at hosts, in pending inboxes, and in flight, and the
:class:`~repro.network.MassLedger` can be checked after *every* event
(``mass_check="event"``), at every sample (``"sample"``, the default —
which also resyncs the running totals against an exact recount) or never
(``"off"``).

The class subclasses :class:`repro.Simulation` for its population
management, truth/metric computation and result plumbing — but ``run``
executes the calendar to the configured ``duration`` and ``step`` is
meaningless here.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.events.adapters import ExchangeAdapter, PushAdapter
from repro.events.calendar import DELIVER, MEMBERSHIP, SAMPLE, TICK, EventCalendar
from repro.events.clocks import HostClock, draw_rate, make_clock
from repro.simulator.engine import Simulation
from repro.simulator.host import Host
from repro.simulator.result import SimulationResult

__all__ = ["EventSimulation", "MASS_CHECK_MODES"]

#: Accepted values for the ``mass_check`` engine parameter.
MASS_CHECK_MODES = ("sample", "event", "off")

#: Slack used when comparing event times against the run duration.
_TIME_EPS = 1e-9


class EventSimulation(Simulation):
    """Drive one protocol over one environment in continuous simulated time.

    Parameters (beyond :class:`repro.Simulation`'s)
    -----------------------------------------------
    duration:
        Simulated seconds to run.  Defaults to ``rounds``×``sample_interval``
        worth when built from a :class:`~repro.api.spec.ScenarioSpec`.
    sample_interval:
        Simulated seconds between metric samples; sample *j* fires at
        ``j * sample_interval`` and records ``round_index = j - 1``.
    rates:
        The host-clock rate configuration (see
        :func:`repro.events.clocks.draw_rate`); ``None`` means every host
        gossips once per second.
    synchronized:
        Whether host clocks share the global grid (see
        :mod:`repro.events.clocks`).
    mass_check:
        ``"sample"`` (default), ``"event"`` or ``"off"`` — how often the
        mass-conservation books are balanced for mass-conserving
        protocols.
    """

    #: Exchange mode over a latency network is realised as request/reply
    #: events, so the round engine's eager rejection does not apply here.
    _defers_exchange = True

    def __init__(
        self,
        protocol,
        environment,
        values: Sequence[float],
        *,
        seed: int = 0,
        mode: str = "push",
        events: Optional[Iterable] = None,
        network=None,
        group_relative: bool = False,
        store_estimates: bool = False,
        duration: float = 60.0,
        sample_interval: float = 1.0,
        rates: Optional[dict] = None,
        synchronized: bool = True,
        mass_check: str = "sample",
        probe=None,
    ):
        if not (isinstance(sample_interval, (int, float)) and sample_interval > 0):
            raise ValueError(f"sample_interval must be a positive number, got {sample_interval!r}")
        if not (isinstance(duration, (int, float)) and duration >= sample_interval):
            raise ValueError(
                f"duration must be a number >= sample_interval ({sample_interval}), "
                f"got {duration!r}"
            )
        if mass_check not in MASS_CHECK_MODES:
            raise ValueError(
                f"unknown mass_check mode {mass_check!r}; expected one of {MASS_CHECK_MODES}"
            )
        # Attributes the add_host override consults must exist before the
        # base constructor registers the initial population.
        self._event_init_done = False
        super().__init__(
            protocol,
            environment,
            values,
            seed=seed,
            mode=mode,
            events=events,
            network=network,
            group_relative=group_relative,
            store_estimates=store_estimates,
            probe=probe,
        )
        self.duration = float(duration)
        self.sample_interval = float(sample_interval)
        self.synchronized = bool(synchronized)
        self.mass_check = mass_check
        self._rates_config = dict(rates) if rates else {"distribution": "uniform", "rate": 1.0}
        self.calendar = EventCalendar()
        self._clock_rng = self.streams.get("clocks")
        self._clocks: Dict[int, HostClock] = {}
        # Hosts with a TICK event currently on the calendar.  Membership
        # handling consults this to restart the tick chains of hosts that
        # were revived after their last tick fired unrescheduled.
        self._pending_ticks: set = set()
        self._inboxes: Dict[int, List] = {}
        self._received: Dict[int, int] = {}
        self._alive_set = set(self.alive_ids())
        self._now = 0.0
        self._started = False
        self._adapter = PushAdapter(self) if mode == "push" else ExchangeAdapter(self)

        # Mass conservation runs whenever the protocol has a conserved
        # quantity — even without a network model, since payloads rest in
        # pending inboxes between ticks (unlike the round engine, where
        # only a network can put mass outside host states).
        self._track_mass = False
        if mass_check != "off" and self.hosts:
            probe = next(iter(self.hosts.values()))
            if self.protocol.state_mass(probe.state) is not None:
                self._track_mass = True
                self.mass_ledger.open(self._total_state_mass())
        self._state_mass = self._total_state_mass() if self._track_mass else 0.0
        self._inbox_mass = 0.0

        self.result.metadata["engine"] = {
            "name": "events",
            "duration": self.duration,
            "sample_interval": self.sample_interval,
            "rates": dict(self._rates_config),
            "synchronized": self.synchronized,
            "mass_check": mass_check,
        }

        # The whole agenda is knowable up front except deliveries: host
        # first ticks (registration order = host-id order), every sample,
        # and every scheduled membership event.
        self._event_init_done = True
        for host_id in sorted(self.hosts):
            self._attach_clock(host_id, join_time=0.0)
        self._n_samples = int(math.floor(self.duration / self.sample_interval + _TIME_EPS))
        for j in range(1, self._n_samples + 1):
            self.calendar.schedule(j * self.sample_interval, SAMPLE, ("sample", j))
        for event in self.events:
            fire_at = (event.round + 1) * self.sample_interval
            if fire_at <= self.duration + _TIME_EPS:
                self.calendar.schedule(fire_at, MEMBERSHIP, ("membership", event))

    # ----------------------------------------------------------- population
    def add_host(self, value: float, round_index: Optional[int] = None) -> Host:
        """Create a live host and, mid-run, start its gossip clock."""
        host = super().add_host(value, round_index)
        if self._event_init_done:
            self._alive_set.add(host.host_id)
            self._attach_clock(host.host_id, join_time=self._now)
        return host

    def fail_host(self, host_id: int, round_index: Optional[int] = None) -> None:
        super().fail_host(host_id, round_index)
        self._alive_set.discard(host_id)

    def _attach_clock(self, host_id: int, *, join_time: float) -> None:
        rate = draw_rate(self._rates_config, self._clock_rng)
        clock = make_clock(
            host_id,
            rate,
            join_time=join_time,
            synchronized=self.synchronized,
            rng=self._clock_rng,
        )
        self._clocks[host_id] = clock
        first = clock.next_time()
        if first <= self.duration + _TIME_EPS:
            self.calendar.schedule(first, TICK, ("tick", host_id))
            self._pending_ticks.add(host_id)

    # ------------------------------------------------------------------- run
    def run(self, rounds: Optional[int] = None) -> SimulationResult:
        """Execute the calendar through ``duration`` simulated seconds.

        The event engine has no notion of "additional rounds": the agenda
        is the configured duration, so ``rounds`` must be ``None``.
        """
        if rounds is not None:
            raise ValueError(
                "EventSimulation runs its configured duration; set duration/"
                "sample_interval via engine_params instead of passing rounds"
            )
        if self._started:
            raise RuntimeError("EventSimulation.run() can only be called once")
        self._started = True
        if self.network is not None:
            self.network.begin_round(0)
        calendar = self.calendar
        horizon = self.duration + _TIME_EPS
        probe = self.probe
        probing = probe.enabled
        with probe.span("calendar"):
            while calendar:
                time, priority, _seq, event = calendar.pop()
                if time > horizon:
                    # Everything later stays unprocessed: messages still in
                    # flight remain on the books as in-flight mass.
                    break
                self._now = time
                kind = event[0]
                if kind == "tick":
                    self._on_tick(event[1], time)
                    if probing:
                        probe.count("events.tick")
                elif priority == DELIVER:
                    self._adapter.handle(event, time)
                    if probing:
                        probe.count("events.deliver")
                elif kind == "sample":
                    self._on_sample(event[1], time)
                    if probing:
                        probe.count("events.sample")
                        probe.gauge("calendar_depth", len(calendar))
                else:  # membership
                    self._on_membership(event[1], time)
                    if probing:
                        probe.count("events.membership")
                if self._track_mass and self.mass_check == "event":
                    self.mass_ledger.check(
                        self._observed_mass(), round_index=self._sample_bin(time)
                    )
        return self.result

    def step(self):  # pragma: no cover - guarded API difference
        raise NotImplementedError(
            "the event engine has no per-round step(); use run() to execute "
            "the full simulated duration"
        )

    # ---------------------------------------------------------------- events
    def _on_tick(self, host_id: int, time: float) -> None:
        self._pending_ticks.discard(host_id)
        host = self.hosts[host_id]
        if not host.alive:
            # Dead hosts stop ticking; _on_membership restarts the chain
            # if a membership model later revives the host.
            return
        bin_index = self._sample_bin(time)
        state = host.state
        clock = self._clocks[host_id]
        self._run_state_hook(
            state,
            lambda: self.protocol.begin_round(state, bin_index, self._protocol_rng),
            inject=True,
        )
        self._adapter.on_tick(host_id, state, time, bin_index)
        received = self._received.pop(host_id, 0)
        self._run_state_hook(
            state,
            lambda: self.protocol.finalize_round(state, received, self._protocol_rng),
            inject=True,
        )
        clock.advance()
        next_time = clock.next_time()
        if next_time <= self.duration + _TIME_EPS:
            self.calendar.schedule(next_time, TICK, ("tick", host_id))
            self._pending_ticks.add(host_id)

    def _on_sample(self, sample_index: int, time: float) -> None:
        alive = self.alive_ids()
        round_index = sample_index - 1
        if self._track_mass:
            # Exact recount: resyncs the running total (guarding against
            # float drift over many increments) and balances the books.
            total = self._total_state_mass()
            self._state_mass = total
            self.mass_ledger.check(
                total + self._in_flight.in_flight_mass + self._inbox_mass,
                round_index=round_index,
            )
        if self.network is not None:
            self.delivery.snapshot_in_flight(round_index, self._in_flight.in_flight)
        record = self._record_round(alive, round_index)
        record.time = time
        self.result.append(record)
        self.round_index = sample_index
        if self.network is not None:
            self.network.begin_round(sample_index)
        if self.probe.enabled:
            if self._track_mass:
                self.probe.event(
                    "mass_check",
                    round=round_index,
                    at_hosts=self._state_mass,
                    in_flight=self._in_flight.in_flight_mass + self._inbox_mass,
                )
            self.probe.event(
                "round_end",
                round=round_index,
                time=time,
                n_alive=record.n_alive,
                max_abs_error=record.max_abs_error,
                messages_delivered=record.messages_delivered,
                messages_lost=record.messages_lost,
                bytes_sent=record.bytes_sent,
            )
            self.probe.gauge("n_alive", record.n_alive)

    def _on_membership(self, event, time: float) -> None:
        before = self._state_mass
        event.apply(self, event.round)
        # Models may mutate hosts directly (graceful departures revive or
        # transfer state), so recompute the live set rather than trusting
        # the fail_host/add_host overrides alone.
        self._alive_set = set(self.alive_ids())
        # Restart the gossip clocks of revived hosts: a host that died
        # mid-chain had its tick fire without rescheduling, so revival
        # would otherwise leave it receiving payloads forever without ever
        # gossiping.  Stale clocks are fast-forwarded on their own grid so
        # no tick is ever scheduled in the past.
        for host_id in sorted(self._alive_set):
            if host_id in self._pending_ticks:
                continue
            clock = self._clocks.get(host_id)
            if clock is None:
                self._attach_clock(host_id, join_time=time)
                continue
            while clock.next_time() <= time + _TIME_EPS:
                clock.advance()
            next_time = clock.next_time()
            if next_time <= self.duration + _TIME_EPS:
                self.calendar.schedule(next_time, TICK, ("tick", host_id))
                self._pending_ticks.add(host_id)
        if self._track_mass:
            total = self._total_state_mass()
            delta = total - before
            if delta:
                # Joins mint mass and value rebases shift it by design;
                # both are deliberate injections, not leaks.
                self.mass_ledger.record_injected(delta)
            self._state_mass = total

    # -------------------------------------------------------------- plumbing
    def _sample_bin(self, time: float) -> int:
        """The sample (== round) index that will record activity at ``time``."""
        return max(0, math.ceil(time / self.sample_interval - _TIME_EPS) - 1)

    def _plan_delay(self, source: int, destination: int, bin_index: int, size: int):
        """Delivery delay in simulated seconds, or ``None`` when lost."""
        if self.network is None:
            return 0.0
        return self.network.plan_seconds(
            source, destination, bin_index, size, self._network_rng
        )

    def _deliver_payload(
        self, target: int, payload, mass: Optional[float], bin_index: int, *, count: bool
    ) -> None:
        """Drop ``payload`` into ``target``'s pending inbox."""
        self._inboxes.setdefault(target, []).append(payload)
        self._received[target] = self._received.get(target, 0) + 1
        if count:
            self.delivery.record_delivered(bin_index)
        if self._track_mass and mass is not None:
            self._inbox_mass += mass

    def _run_state_hook(self, state, hook, *, inject: bool) -> None:
        """Run a protocol hook, folding its state-mass delta into the books.

        ``inject=True`` marks the delta as deliberate (epoch restarts in
        ``begin_round``, reversion in ``finalize_round``); deltas from
        non-injecting hooks are left unrecorded so the next conservation
        check reports them as leaks.
        """
        if not self._track_mass:
            hook()
            return
        before = self.protocol.state_mass(state) or 0.0
        hook()
        delta = (self.protocol.state_mass(state) or 0.0) - before
        if delta:
            self._state_mass += delta
            if inject:
                self.mass_ledger.record_injected(delta)

    def _observed_mass(self) -> float:
        """All conserved mass the engine can currently see (running totals)."""
        return self._state_mass + self._in_flight.in_flight_mass + self._inbox_mass
