"""Per-host gossip clocks: rates, periods and deterministic tick times.

The round engine forces every host onto one global drumbeat; the event
engine gives each host its own clock.  A clock is defined by a *rate*
(gossip actions per simulated second) drawn from one of three
distributions, and by whether hosts are *synchronized*:

* ``synchronized=True`` — a host with period ``p = 1/rate`` ticks on the
  global grid ``k * p`` (``k >= 1``).  With every rate equal and the
  sample interval matching the period, this reproduces the round
  engine's lockstep schedule exactly (the equivalence configuration of
  ``tests/test_events.py``).
* ``synchronized=False`` — the first tick lands at ``join_time + offset``
  with a random phase ``offset`` drawn uniformly from ``(0, p]``, and
  subsequent ticks at ``first + k * p``.  Tick times are computed by
  multiplication from the stored origin, never by repeated addition, so
  float error does not accumulate over long runs.

All clock randomness (phase offsets, heterogeneous/lognormal rate draws)
comes from the dedicated ``"clocks"`` stream of
:class:`~repro.simulator.rng.RandomStreams`, so configuring clocks never
perturbs peer selection, protocol or network draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = ["HostClock", "RATE_DISTRIBUTIONS", "draw_rate", "make_clock"]

#: Rate distributions understood by ``engine_params["rates"]``.
RATE_DISTRIBUTIONS = ("uniform", "heterogeneous", "lognormal")

#: Tolerance used when snapping a join time onto the synchronized grid.
_GRID_EPS = 1e-9


def draw_rate(config: Mapping[str, Any], rng: np.random.Generator) -> float:
    """One host's gossip rate under the ``rates`` configuration.

    * ``uniform`` — every host gossips at ``rate`` (default ``1.0``);
      draws nothing, so the default configuration consumes no randomness.
    * ``heterogeneous`` — ``fast`` with probability ``fast_fraction``
      (default ``0.5``), else ``slow``; one uniform draw per host.
    * ``lognormal`` — ``lognormal(mean, sigma)`` actions per second,
      floored at ``min_rate`` when given; one draw per host.

    Rates are drawn per host in registration order (joining hosts draw at
    join time), which keeps runs bit-reproducible for equal seeds.
    """
    distribution = config.get("distribution", "uniform")
    if distribution == "uniform":
        return float(config.get("rate", 1.0))
    if distribution == "heterogeneous":
        fast = float(config["fast"])
        slow = float(config["slow"])
        fraction = float(config.get("fast_fraction", 0.5))
        return fast if float(rng.random()) < fraction else slow
    if distribution == "lognormal":
        rate = float(rng.lognormal(float(config.get("mean", 0.0)), float(config.get("sigma", 0.5))))
        minimum = config.get("min_rate")
        if minimum is not None:
            rate = max(rate, float(minimum))
        return rate
    raise ValueError(
        f"unknown rate distribution {distribution!r}; expected one of {RATE_DISTRIBUTIONS}"
    )


@dataclass
class HostClock:
    """One host's tick schedule: ``next_time() = origin + next_index * period``.

    Synchronized clocks store ``origin = 0`` and start at the first grid
    index at-or-after the host's join time; unsynchronized clocks store
    their (random-phase) first tick as the origin and count from zero.
    """

    host_id: int
    rate: float
    period: float
    origin: float
    next_index: int

    def next_time(self) -> float:
        """The simulated time of the next scheduled tick."""
        return self.origin + self.next_index * self.period

    def advance(self) -> None:
        """Consume the current tick; :meth:`next_time` moves one period on."""
        self.next_index += 1


def make_clock(
    host_id: int,
    rate: float,
    *,
    join_time: float,
    synchronized: bool,
    rng: np.random.Generator,
) -> HostClock:
    """Build the clock for ``host_id`` joining at ``join_time``.

    Synchronized hosts tick on the global grid ``k * period`` with
    ``k >= 1``; the first tick is the smallest grid point at-or-after the
    join time (a host joining exactly on a grid point gossips at that
    very instant, mirroring how the round engine lets a joining host
    participate in the round it joins).  Unsynchronized hosts draw a
    phase offset in ``(0, period]`` so an instant-zero burst of the whole
    population cannot happen.
    """
    if rate <= 0:
        raise ValueError(f"gossip rates must be positive, got {rate!r}")
    period = 1.0 / float(rate)
    if synchronized:
        first_index = max(1, math.ceil(join_time / period - _GRID_EPS))
        return HostClock(host_id, float(rate), period, 0.0, int(first_index))
    offset = period * (1.0 - float(rng.random()))
    return HostClock(host_id, float(rate), period, join_time + offset, 0)
