"""The global event calendar: a deterministic continuous-time agenda.

The event engine replaces the round loop with a single priority queue of
*(time, priority, seq, event)* entries.  Three properties make replays
bit-identical for equal seeds:

* **time** is simulated seconds (a float); the heap always pops the
  earliest instant first.
* **priority** orders the event *kinds* that share an instant: membership
  changes apply first (exactly like the round engine's
  start-of-round events), then message deliveries (so payloads that
  mature at an instant are in their recipients' inboxes before any host
  gossips), then host ticks, and finally samples (which observe the
  instant's finished state).
* **seq** is a globally monotone tie-breaker: two events with equal time
  and equal priority pop in the order they were scheduled.  Nothing ever
  compares the event payloads themselves, so payloads need no ordering.

The calendar is pure data structure — it draws no randomness and holds no
simulation state — which is what lets ``tests/test_events.py`` pin its
ordering behaviour directly.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Tuple

__all__ = [
    "EventCalendar",
    "MEMBERSHIP",
    "DELIVER",
    "TICK",
    "SAMPLE",
]

#: Priorities for events sharing one simulated instant (lower pops first).
MEMBERSHIP = 0  #: scheduled membership events (failures, joins, value changes)
DELIVER = 1  #: message deliveries (push payloads, exchange request/reply legs)
TICK = 2  #: per-host clock ticks (the host gossips)
SAMPLE = 3  #: metric samples (observe the instant after everything else)


class EventCalendar:
    """A heap of ``(time, priority, seq, event)`` entries.

    ``schedule`` accepts any event payload; ``pop`` returns the full
    4-tuple so the caller can dispatch on the payload and log the instant.
    Equal ``(time, priority)`` entries pop in scheduling order thanks to
    the monotone ``seq`` counter — the property the determinism tests pin.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0

    def schedule(self, time: float, priority: int, event: Any) -> None:
        """Add ``event`` at simulated ``time`` with kind ``priority``."""
        heapq.heappush(self._heap, (float(time), int(priority), self._seq, event))
        self._seq += 1

    def pop(self) -> Tuple[float, int, int, Any]:
        """Remove and return the earliest ``(time, priority, seq, event)``."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """The time of the earliest entry (raises ``IndexError`` when empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = f", next={self._heap[0][:3]}" if self._heap else ""
        return f"EventCalendar(pending={len(self._heap)}{head})"
