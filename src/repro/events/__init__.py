"""repro.events — the continuous-time event-driven simulation engine.

The round engine (:class:`repro.Simulation`) advances the whole
population in lockstep; this package advances a *global event calendar*
instead: per-host clocks with configurable gossip rates, timestamped
in-flight messages, and protocol adapters that drive the existing
round-based protocols through timed send/receive/exchange events — which
is what unlocks latency×exchange scenarios (forbidden in the round
engine) and rate-heterogeneous populations.

Select it per scenario with ``ScenarioSpec(engine="events",
engine_params={...})`` — see DESIGN.md §11.
"""

from repro.events.calendar import DELIVER, MEMBERSHIP, SAMPLE, TICK, EventCalendar
from repro.events.clocks import RATE_DISTRIBUTIONS, HostClock, draw_rate, make_clock
from repro.events.engine import MASS_CHECK_MODES, EventSimulation
from repro.events.vectorized import run_vectorized_events

__all__ = [
    "DELIVER",
    "EventCalendar",
    "EventSimulation",
    "HostClock",
    "MASS_CHECK_MODES",
    "MEMBERSHIP",
    "RATE_DISTRIBUTIONS",
    "SAMPLE",
    "TICK",
    "draw_rate",
    "make_clock",
    "run_vectorized_events",
]
