"""Protocol adapters: drive round-based protocols through timed events.

Every protocol in the repository was written against the round engine's
hook contract (``begin_round`` / ``make_payloads`` / ``integrate`` /
``finalize_round``, or ``exchange``).  The adapters here replay that
contract from a continuous-time event stream so the protocols run
*unmodified*:

* :class:`PushAdapter` — a host's clock tick performs one full gossip
  action: select peers, emit payloads (each planned through the network
  model into an in-flight message, an instant local delivery, or a
  loss), then integrate everything sitting in the host's pending inbox
  and finalize.  ``"deliver"`` events move matured in-flight payloads
  into pending inboxes between ticks.
* :class:`ExchangeAdapter` — an atomic push/pull over a latent network
  becomes a *request leg* plus a *reply leg*: the tick plans the request
  (``"xreq"`` event after the request delay), the request's arrival
  plans the reply (``"xdone"`` event), and only when the reply arrives —
  with both endpoints still alive — does ``protocol.exchange`` run,
  atomically, on the hosts' *current* states.  No state ever travels
  inside the messages, so conserved mass is never in flight in exchange
  mode and the atomicity the round engine could not reconcile with
  latency (the PR 3 rejection) holds by construction.

Adapters contain no randomness of their own; every draw goes through the
engine's named streams in tick order, which is what makes the
unit-delay/synchronized configuration reproduce the round engine's
trajectories bit for bit (see ``tests/test_events.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Tuple

from repro.events.calendar import DELIVER
from repro.network.delivery import InFlightMessage
from repro.simulator.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.engine import EventSimulation

__all__ = ["ProtocolAdapter", "PushAdapter", "ExchangeAdapter"]


class ProtocolAdapter:
    """Base adapter: one gossip action per tick, plus timed-event handling."""

    def __init__(self, engine: "EventSimulation"):
        self.engine = engine

    def on_tick(self, host_id: int, state: Any, time: float, bin_index: int) -> None:
        """Perform the host's gossip action for one clock tick."""
        raise NotImplementedError

    def handle(self, event: Tuple, time: float) -> None:
        """Process one DELIVER-priority calendar event produced by this adapter."""
        raise NotImplementedError


class PushAdapter(ProtocolAdapter):
    """Message gossip: payloads travel, recipients integrate at their ticks."""

    def on_tick(self, host_id: int, state: Any, time: float, bin_index: int) -> None:
        engine = self.engine
        protocol = engine.protocol
        peers = engine.environment.select_peers(
            host_id, engine._alive_set, bin_index, protocol.fanout, engine._peer_rng
        )
        if engine._track_mass:
            before = protocol.state_mass(state) or 0.0
            payloads = protocol.make_payloads(state, peers, engine._protocol_rng)
            # Mass removed from the state moved into the payloads below;
            # it is not an injection, so any imbalance is caught as a leak.
            engine._state_mass += (protocol.state_mass(state) or 0.0) - before
        else:
            payloads = protocol.make_payloads(state, peers, engine._protocol_rng)
        for destination, payload in payloads:
            target = host_id if destination is None else destination
            message = Message(host_id, target, payload, bin_index)
            size = protocol.payload_size(payload)
            engine.bandwidth.record(message, size)
            mass = protocol.payload_mass(payload)
            if message.is_self_message:
                # Self-messages never touch the radio: straight into the
                # sender's own pending inbox, integrated this very tick.
                engine._deliver_payload(host_id, payload, mass, bin_index, count=False)
                continue
            if target not in engine._alive_set:
                engine._record_lost_message(bin_index, mass)
                continue
            delay = engine._plan_delay(host_id, target, bin_index, size)
            if delay is None:
                engine._record_lost_message(bin_index, mass)
            elif delay <= 0.0:
                # Instant arrival: into the pending inbox now (integrated at
                # the target's next tick — possibly later this same instant).
                # The delivery meter only runs when a network model does,
                # matching the round engine's accounting.
                engine._deliver_payload(
                    target, payload, mass, bin_index, count=engine.network is not None
                )
            else:
                deliver_time = time + delay
                engine._in_flight.schedule(
                    InFlightMessage(
                        source=host_id,
                        destination=target,
                        payload=payload,
                        sent_round=time,
                        deliver_round=deliver_time,
                        mass=mass,
                    )
                )
                engine.calendar.schedule(deliver_time, DELIVER, ("deliver",))
        self._integrate(host_id, state)

    def _integrate(self, host_id: int, state: Any) -> None:
        """Fold the host's pending inbox into its state (swap-and-integrate)."""
        engine = self.engine
        protocol = engine.protocol
        inbox = engine._inboxes.pop(host_id, None) or []
        if engine._track_mass:
            if inbox:
                engine._inbox_mass -= sum(
                    protocol.payload_mass(payload) or 0.0 for payload in inbox
                )
            before = protocol.state_mass(state) or 0.0
            protocol.integrate(state, inbox, engine._protocol_rng)
            engine._state_mass += (protocol.state_mass(state) or 0.0) - before
        else:
            protocol.integrate(state, inbox, engine._protocol_rng)

    def handle(self, event: Tuple, time: float) -> None:
        # ("deliver",): pop every in-flight message maturing at this instant
        # (scheduling order).  Several messages maturing at the same instant
        # each scheduled a calendar event; the first pops the whole batch and
        # the duplicates harmlessly pop an empty list.
        engine = self.engine
        bin_index = engine._sample_bin(time)
        for item in engine._in_flight.due(time):
            if item.destination in engine._alive_set:
                engine._deliver_payload(
                    item.destination, item.payload, item.mass, bin_index, count=True
                )
            else:
                # Matured at a host that has since departed: lost, just like
                # the round engine's same-fate rule.
                engine._record_lost_message(bin_index, item.mass)


class ExchangeAdapter(ProtocolAdapter):
    """Atomic push/pull realised as a request leg plus a timed reply leg."""

    def on_tick(self, host_id: int, state: Any, time: float, bin_index: int) -> None:
        engine = self.engine
        protocol = engine.protocol
        peers = engine.environment.select_peers(
            host_id, engine._alive_set, bin_index, 1, engine._peer_rng
        )
        if not peers:
            return
        peer_id = peers[0]
        if peer_id == host_id or peer_id not in engine._alive_set:
            return
        size = protocol.exchange_size(state, engine.hosts[peer_id].state)
        delay = engine._plan_delay(host_id, peer_id, bin_index, size)
        if delay is None:
            # A lossy link makes the exchange not happen at all; the
            # initiator's transmitted half still cost radio bytes,
            # mirroring the round engine's lost-exchange accounting.
            engine.delivery.record_lost(bin_index, 2)
            engine.bandwidth.record_lost_exchange(bin_index, host_id, size)
            return
        engine.bandwidth.record(Message(host_id, peer_id, None, bin_index), size)
        # Zero-delay legs schedule at the current instant with DELIVER
        # priority, which pops before the instant's remaining ticks —
        # deterministic, and the whole exchange completes "now".
        engine.calendar.schedule(time + delay, DELIVER, ("xreq", host_id, peer_id, size))

    def handle(self, event: Tuple, time: float) -> None:
        engine = self.engine
        bin_index = engine._sample_bin(time)
        if event[0] == "xreq":
            _, initiator, responder, size = event
            if responder not in engine._alive_set:
                # Request arrived at a departed host: the request is lost
                # and the reply will never be sent.  Every attempted
                # exchange accounts exactly two messages (DESIGN.md §11),
                # matching the round engine's lost-exchange accounting.
                engine.delivery.record_lost(bin_index, 2)
                return
            engine.delivery.record_delivered(bin_index)
            # The responder transmits its reply immediately; the reply bytes
            # go on the radio whether or not the network then loses the leg.
            engine.bandwidth.record(Message(responder, initiator, None, bin_index), size)
            delay = engine._plan_delay(responder, initiator, bin_index, size)
            if delay is None:
                engine.delivery.record_lost(bin_index)
                return
            engine.calendar.schedule(time + delay, DELIVER, ("xdone", initiator, responder))
            return
        # ("xdone", initiator, responder): the reply arrived.
        _, initiator, responder = event
        if initiator not in engine._alive_set:
            engine.delivery.record_lost(bin_index)
            return
        engine.delivery.record_delivered(bin_index)
        if responder not in engine._alive_set:
            # The responder departed after replying; the atomic exchange
            # needs both endpoints, so nothing reconciles (and no mass was
            # ever in flight to strand).
            return
        protocol = engine.protocol
        state_a = engine.hosts[initiator].state
        state_b = engine.hosts[responder].state
        if engine._track_mass:
            before = (protocol.state_mass(state_a) or 0.0) + (
                protocol.state_mass(state_b) or 0.0
            )
            protocol.exchange(state_a, state_b, engine._protocol_rng)
            # An exchange may only *move* mass between the two states; any
            # net change is a leak the next conservation check reports.
            engine._state_mass += (
                (protocol.state_mass(state_a) or 0.0)
                + (protocol.state_mass(state_b) or 0.0)
                - before
            )
        else:
            protocol.exchange(state_a, state_b, engine._protocol_rng)
        engine._received[initiator] = engine._received.get(initiator, 0) + 1
        engine._received[responder] = engine._received.get(responder, 0) + 1
