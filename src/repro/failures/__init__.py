"""Failure, churn and membership-change models.

The whole point of *dynamic* aggregation is surviving silent membership
changes, so the failure machinery is a first-class substrate here:

* :class:`UncorrelatedFailure` — remove a random fraction of the live
  hosts (Fig 8: the aggregate barely moves);
* :class:`CorrelatedFailure` — remove the hosts with the largest (or
  smallest) values (Fig 10: the aggregate shifts and static protocols
  never notice);
* :class:`BernoulliChurn` — continuous per-round departure/arrival churn;
* :class:`FailureEvent` / :class:`JoinEvent` / :class:`ValueChangeEvent` —
  schedule any of the above at specific rounds of a
  :class:`repro.simulator.Simulation`.
"""

from repro.failures.models import (
    BernoulliChurn,
    CorrelatedFailure,
    ExplicitFailure,
    FailureModel,
    UncorrelatedFailure,
)
from repro.failures.schedule import ChurnProcess, FailureEvent, JoinEvent, ValueChangeEvent

__all__ = [
    "BernoulliChurn",
    "ChurnProcess",
    "CorrelatedFailure",
    "ExplicitFailure",
    "FailureEvent",
    "FailureModel",
    "JoinEvent",
    "UncorrelatedFailure",
    "ValueChangeEvent",
]
