"""Failure models: which hosts silently leave the computation.

A failure model is a strategy object that, given the currently live hosts
(and their values), selects the identifiers to fail.  Keeping selection
separate from scheduling lets the same models drive one-shot events
(Figs 8–10), continuous churn processes, and the vectorised kernels.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "FailureModel",
    "UncorrelatedFailure",
    "CorrelatedFailure",
    "ExplicitFailure",
    "BernoulliChurn",
]


class FailureModel(abc.ABC):
    """Selects which of the live hosts fail."""

    @abc.abstractmethod
    def select(
        self,
        alive_ids: Sequence[int],
        values: Dict[int, float],
        rng: np.random.Generator,
    ) -> List[int]:
        """Return the identifiers of the hosts that fail."""

    def describe(self) -> dict:
        """Parameters for experiment records."""
        return {"model": type(self).__name__}


class UncorrelatedFailure(FailureModel):
    """Fail a uniformly random ``fraction`` of the live hosts.

    By the law of large numbers this leaves the true average (almost)
    unchanged; the paper uses it to show that Push-Sum-Revert does no harm
    when reversion is not needed (Fig 8).
    """

    def __init__(self, fraction: float = 0.5):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = float(fraction)

    def select(
        self,
        alive_ids: Sequence[int],
        values: Dict[int, float],
        rng: np.random.Generator,
    ) -> List[int]:
        count = int(round(self.fraction * len(alive_ids)))
        if count <= 0:
            return []
        picks = rng.choice(len(alive_ids), size=min(count, len(alive_ids)), replace=False)
        return [alive_ids[int(index)] for index in picks]

    def describe(self) -> dict:
        return {"model": "UncorrelatedFailure", "fraction": self.fraction}


class CorrelatedFailure(FailureModel):
    """Fail the ``fraction`` of live hosts with the most extreme values.

    The paper's correlated-failure experiment removes the highest-valued
    half of the hosts, shifting the expected average from 50 to 25 while
    leaving the surviving mass unaware anything happened (Fig 10).
    ``highest=False`` removes the lowest-valued hosts instead.
    """

    def __init__(self, fraction: float = 0.5, highest: bool = True):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.highest = bool(highest)

    def select(
        self,
        alive_ids: Sequence[int],
        values: Dict[int, float],
        rng: np.random.Generator,
    ) -> List[int]:
        count = int(round(self.fraction * len(alive_ids)))
        if count <= 0:
            return []
        ordered = sorted(alive_ids, key=lambda host_id: values[host_id], reverse=self.highest)
        return list(ordered[:count])

    def describe(self) -> dict:
        return {
            "model": "CorrelatedFailure",
            "fraction": self.fraction,
            "highest": self.highest,
        }


class ExplicitFailure(FailureModel):
    """Fail an explicit list of host identifiers (tests and what-if studies)."""

    def __init__(self, host_ids: Sequence[int]):
        self.host_ids = list(host_ids)

    def select(
        self,
        alive_ids: Sequence[int],
        values: Dict[int, float],
        rng: np.random.Generator,
    ) -> List[int]:
        alive = set(alive_ids)
        return [host_id for host_id in self.host_ids if host_id in alive]

    def describe(self) -> dict:
        return {"model": "ExplicitFailure", "count": len(self.host_ids)}


class BernoulliChurn(FailureModel):
    """Each live host independently fails with probability ``p`` per round.

    Combined with a matching arrival process this models steady-state churn
    rather than the paper's one-shot catastrophes; used by the ablation and
    robustness experiments.
    """

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)

    def select(
        self,
        alive_ids: Sequence[int],
        values: Dict[int, float],
        rng: np.random.Generator,
    ) -> List[int]:
        if not alive_ids or self.p == 0.0:
            return []
        draws = rng.random(len(alive_ids))
        return [host_id for host_id, draw in zip(alive_ids, draws) if draw < self.p]

    def describe(self) -> dict:
        return {"model": "BernoulliChurn", "p": self.p}
