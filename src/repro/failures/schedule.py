"""Scheduled events applied to a running simulation.

Events expose a ``round`` attribute and an ``apply(simulation, round_index)``
method; the engine applies every event whose round matches at the *start*
of that round.  "Fail half the hosts after 20 rounds" is therefore
``FailureEvent(round=20, model=...)`` — rounds 0–19 run undisturbed and the
failure is in effect from round 20 onwards, matching the paper's "after 20
iterations, 50 000 random hosts were removed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.failures.models import FailureModel

__all__ = ["FailureEvent", "JoinEvent", "ValueChangeEvent", "ChurnProcess"]


@dataclass
class FailureEvent:
    """Silently fail the hosts selected by ``model`` at round ``round``."""

    round: int
    model: FailureModel
    #: Seed offset so repeated events with the same model differ.
    seed_salt: str = "failure"

    def apply(self, simulation, round_index: int) -> None:
        rng = simulation.streams.get(f"{self.seed_salt}:{round_index}")
        alive_ids = simulation.alive_ids()
        values = {host_id: simulation.hosts[host_id].value for host_id in alive_ids}
        for host_id in self.model.select(alive_ids, values, rng):
            simulation.fail_host(host_id, round_index)

    def describe(self) -> dict:
        return {"event": "failure", "round": self.round, **self.model.describe()}


@dataclass
class JoinEvent:
    """Add ``count`` new hosts whose values come from ``value_factory``.

    ``value_factory`` receives the event's RNG and must return one value per
    call; the default draws uniformly from [0, 100), the paper's standard
    value distribution.
    """

    round: int
    count: int
    value_factory: Optional[Callable[[np.random.Generator], float]] = None
    seed_salt: str = "join"

    def apply(self, simulation, round_index: int) -> None:
        rng = simulation.streams.get(f"{self.seed_salt}:{round_index}")
        factory = self.value_factory or (lambda generator: float(generator.uniform(0.0, 100.0)))
        for _ in range(self.count):
            simulation.add_host(factory(rng), round_index)

    def describe(self) -> dict:
        return {"event": "join", "round": self.round, "count": self.count}


@dataclass
class ValueChangeEvent:
    """Replace the values of selected hosts mid-run.

    ``new_values`` maps host identifier to its new value.  Note that gossip
    protocols whose state was initialised from the old value (all of them)
    will only track the change if they revert towards their initial value —
    which is exactly the behaviour Push-Sum-Revert adds; this event powers
    the value-drift ablation experiments.
    """

    round: int
    new_values: Dict[int, float] = field(default_factory=dict)
    #: Also refresh the protocol state's notion of the initial value when the
    #: protocol exposes a ``rebase(state, value)`` hook.
    rebase_state: bool = True

    def apply(self, simulation, round_index: int) -> None:
        for host_id, value in self.new_values.items():
            if host_id not in simulation.hosts:
                continue
            host = simulation.hosts[host_id]
            host.value = float(value)
            if self.rebase_state and hasattr(simulation.protocol, "rebase"):
                simulation.protocol.rebase(host.state, float(value))

    def describe(self) -> dict:
        return {"event": "value-change", "round": self.round, "count": len(self.new_values)}


@dataclass
class ChurnProcess:
    """Continuous churn: apply a failure model and an arrival rate every round.

    This is a convenience that expands into one event per round in
    ``range(start, stop)``; use :meth:`events` and pass the result to the
    simulation's ``events`` argument.
    """

    start: int
    stop: int
    model: FailureModel
    arrivals_per_round: int = 0
    value_factory: Optional[Callable[[np.random.Generator], float]] = None

    def events(self) -> Sequence:
        scheduled = []
        for round_index in range(self.start, self.stop):
            scheduled.append(FailureEvent(round=round_index, model=self.model, seed_salt="churn"))
            if self.arrivals_per_round > 0:
                scheduled.append(
                    JoinEvent(
                        round=round_index,
                        count=self.arrivals_per_round,
                        value_factory=self.value_factory,
                        seed_salt="churn-join",
                    )
                )
        return scheduled
