"""Random-waypoint mobility over a square arena.

The random-waypoint model is the standard synthetic mobility model for
mobile ad-hoc networks: each node repeatedly picks a destination uniformly
at random in the arena, travels towards it at a uniformly chosen speed,
then pauses.  We use it for sensitivity experiments beyond the paper's
trace-driven evaluation (e.g. the road-hazard example), and to produce
contact traces via a transmission-radius threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.mobility.traces import ContactTrace

__all__ = ["RandomWaypointModel"]

Adjacency = Dict[int, Set[int]]


@dataclass
class _NodeMotion:
    position: np.ndarray
    destination: np.ndarray
    speed: float
    pause_remaining: float


class RandomWaypointModel:
    """Simulate ``n`` nodes moving by random waypoint in a square arena.

    Parameters
    ----------
    n:
        Number of nodes.
    arena_size:
        Side length of the square arena (metres).
    speed_range:
        ``(min, max)`` node speed in metres/second.
    pause_range:
        ``(min, max)`` pause time at each waypoint in seconds.
    radius:
        Transmission radius used by :meth:`adjacency` and :meth:`to_trace`.
    seed:
        Randomness seed.
    """

    def __init__(
        self,
        n: int,
        *,
        arena_size: float = 1000.0,
        speed_range: Tuple[float, float] = (0.5, 3.0),
        pause_range: Tuple[float, float] = (0.0, 120.0),
        radius: float = 50.0,
        seed: Optional[int] = None,
    ):
        if n < 0:
            raise ValueError("n must be non-negative")
        if arena_size <= 0:
            raise ValueError("arena_size must be positive")
        if speed_range[0] <= 0 or speed_range[1] < speed_range[0]:
            raise ValueError("speed_range must be positive and ordered")
        if pause_range[0] < 0 or pause_range[1] < pause_range[0]:
            raise ValueError("pause_range must be non-negative and ordered")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.n = int(n)
        self.arena_size = float(arena_size)
        self.speed_range = speed_range
        self.pause_range = pause_range
        self.radius = float(radius)
        self._rng = np.random.default_rng(seed)
        self.time = 0.0
        self._nodes: List[_NodeMotion] = [self._new_node() for _ in range(self.n)]

    # ----------------------------------------------------------------- motion
    def _new_node(self) -> _NodeMotion:
        position = self._rng.random(2) * self.arena_size
        return _NodeMotion(
            position=position,
            destination=self._rng.random(2) * self.arena_size,
            speed=float(self._rng.uniform(*self.speed_range)),
            pause_remaining=0.0,
        )

    def _advance_node(self, node: _NodeMotion, dt: float) -> None:
        remaining = dt
        while remaining > 1e-12:
            if node.pause_remaining > 0:
                pause = min(node.pause_remaining, remaining)
                node.pause_remaining -= pause
                remaining -= pause
                continue
            to_destination = node.destination - node.position
            distance = float(np.linalg.norm(to_destination))
            if distance < 1e-9:
                node.pause_remaining = float(self._rng.uniform(*self.pause_range))
                node.destination = self._rng.random(2) * self.arena_size
                node.speed = float(self._rng.uniform(*self.speed_range))
                continue
            step = node.speed * remaining
            if step >= distance:
                node.position = node.destination.copy()
                remaining -= distance / node.speed
            else:
                node.position = node.position + to_destination / distance * step
                remaining = 0.0

    def advance(self, dt: float) -> None:
        """Advance the simulation clock by ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        for node in self._nodes:
            self._advance_node(node, dt)
        self.time += dt

    # ---------------------------------------------------------------- queries
    def positions(self) -> np.ndarray:
        """Current node positions as an ``(n, 2)`` array."""
        if not self._nodes:
            return np.zeros((0, 2))
        return np.vstack([node.position for node in self._nodes])

    def adjacency(self, radius: Optional[float] = None) -> Adjacency:
        """Who is within transmission range of whom right now."""
        effective_radius = self.radius if radius is None else radius
        coords = self.positions()
        graph: Adjacency = {node: set() for node in range(self.n)}
        if self.n < 2:
            return graph
        deltas = coords[:, None, :] - coords[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=2))
        within = distances <= effective_radius
        np.fill_diagonal(within, False)
        for a in range(self.n):
            for b in np.nonzero(within[a])[0]:
                graph[a].add(int(b))
        return graph

    # ------------------------------------------------------------------ trace
    def to_trace(
        self,
        duration_seconds: float,
        sample_interval: float = 30.0,
        *,
        name: str = "random-waypoint",
    ) -> ContactTrace:
        """Run the model forward and record a contact trace.

        The adjacency is sampled every ``sample_interval`` seconds (matching
        the paper's 30-second gossip period); contacts spanning consecutive
        samples are merged into intervals.
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        snapshots = []
        elapsed = 0.0
        while elapsed <= duration_seconds:
            snapshots.append((elapsed, self.adjacency()))
            self.advance(sample_interval)
            elapsed += sample_interval
        return ContactTrace.from_snapshots(
            snapshots, self.n, snapshot_length=sample_interval, name=name
        )
