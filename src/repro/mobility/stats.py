"""Trace statistics.

These summaries are used for two purposes: to render the "Avg Group Size"
reference series that Fig 11 overlays on the error curves, and to
sanity-check that the synthetic Haggle-like traces have the qualitative
features (small transient groups, heavy-tailed contact durations, diurnal
cycles) described for the real CRAWDAD datasets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.mobility.traces import ContactTrace
from repro.topology.connectivity import connected_components

__all__ = [
    "average_degree_series",
    "average_group_size_series",
    "contact_duration_stats",
    "intercontact_time_stats",
]


def average_group_size_series(
    trace: ContactTrace,
    step_seconds: float = 1800.0,
    window_seconds: float = 600.0,
) -> Tuple[List[float], List[float]]:
    """Mean "nearby group" size sampled every ``step_seconds``.

    Groups follow the paper's definition: connected components of the union
    of edges seen during the trailing ``window_seconds``.  Returns
    ``(times_in_hours, mean_group_sizes)``.
    """
    if step_seconds <= 0:
        raise ValueError("step_seconds must be positive")
    times: List[float] = []
    sizes: List[float] = []
    time = 0.0
    duration = trace.duration
    while time <= duration:
        groups = trace.groups_at(time, window=window_seconds)
        group_sizes = [len(group) for group in groups] or [1]
        times.append(time / 3600.0)
        sizes.append(float(np.mean(group_sizes)))
        time += step_seconds
    return times, sizes


def average_degree_series(
    trace: ContactTrace, step_seconds: float = 1800.0
) -> Tuple[List[float], List[float]]:
    """Mean instantaneous degree (peers in range) sampled every ``step_seconds``."""
    if step_seconds <= 0:
        raise ValueError("step_seconds must be positive")
    times: List[float] = []
    degrees: List[float] = []
    time = 0.0
    duration = trace.duration
    while time <= duration:
        adjacency = trace.adjacency_at(time)
        per_node = [len(neighbors) for neighbors in adjacency.values()] or [0]
        times.append(time / 3600.0)
        degrees.append(float(np.mean(per_node)))
        time += step_seconds
    return times, degrees


def contact_duration_stats(trace: ContactTrace) -> Dict[str, float]:
    """Summary statistics of contact durations (seconds)."""
    durations = np.asarray([record.duration for record in trace.records], dtype=float)
    if durations.size == 0:
        return {"count": 0, "mean": 0.0, "median": 0.0, "p90": 0.0, "max": 0.0}
    return {
        "count": int(durations.size),
        "mean": float(durations.mean()),
        "median": float(np.median(durations)),
        "p90": float(np.percentile(durations, 90)),
        "max": float(durations.max()),
    }


def intercontact_time_stats(trace: ContactTrace) -> Dict[str, float]:
    """Summary statistics of inter-contact times per device pair (seconds).

    The inter-contact time is the gap between the end of one contact and the
    start of the next contact between the same pair — the key quantity for
    opportunistic forwarding and a standard way to characterise human
    mobility traces.
    """
    gaps: List[float] = []
    by_pair: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
    for record in trace.records:
        by_pair.setdefault((record.a, record.b), []).append((record.start, record.end))
    for intervals in by_pair.values():
        intervals.sort()
        for (_, end_prev), (start_next, _) in zip(intervals, intervals[1:]):
            gap = start_next - end_prev
            if gap > 0:
                gaps.append(gap)
    if not gaps:
        return {"count": 0, "mean": 0.0, "median": 0.0, "p90": 0.0, "max": 0.0}
    gaps_arr = np.asarray(gaps, dtype=float)
    return {
        "count": int(gaps_arr.size),
        "mean": float(gaps_arr.mean()),
        "median": float(np.median(gaps_arr)),
        "p90": float(np.percentile(gaps_arr, 90)),
        "max": float(gaps_arr.max()),
    }
