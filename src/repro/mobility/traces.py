"""Contact-trace data model.

A *contact trace* records, for a fixed set of devices, the time intervals
during which pairs of devices were within wireless range of each other.
This is exactly the information the CRAWDAD Cambridge/Haggle datasets
contain and exactly what the trace-driven gossip environment needs: at any
simulated instant it can ask "who can device *i* currently talk to?", and
over a sliding window it can ask for the union adjacency that defines the
paper's "nearby group".
"""

from __future__ import annotations

import csv
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.topology.connectivity import connected_components, union_adjacency

__all__ = ["ContactRecord", "ContactTrace"]

Adjacency = Dict[int, Set[int]]


@dataclass(frozen=True)
class ContactRecord:
    """One contact interval: devices ``a`` and ``b`` in range during [start, end).

    Times are seconds from the start of the trace.  Records are normalised so
    that ``a < b`` and ``start < end``.
    """

    a: int
    b: int
    start: float
    end: float

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError("a contact requires two distinct devices")
        if self.end <= self.start:
            raise ValueError(
                f"contact interval must have positive length, got [{self.start}, {self.end})"
            )
        if self.a > self.b:
            original_a, original_b = self.a, self.b
            object.__setattr__(self, "a", original_b)
            object.__setattr__(self, "b", original_a)

    @property
    def duration(self) -> float:
        """Length of the contact in seconds."""
        return self.end - self.start

    def active_at(self, time: float) -> bool:
        """Whether the contact covers instant ``time``."""
        return self.start <= time < self.end

    def overlaps(self, start: float, end: float) -> bool:
        """Whether the contact intersects the half-open window [start, end)."""
        return self.start < end and start < self.end


class ContactTrace:
    """A set of devices plus the contact intervals between them.

    Parameters
    ----------
    n_devices:
        Number of devices; device identifiers are ``0..n_devices-1``.
    records:
        Contact intervals.  They may overlap and need not be sorted.
    name:
        Optional label (e.g. ``"synthetic-haggle-1"``) used in reports.

    Notes
    -----
    Queries are served from a per-pair sorted interval index, so
    ``adjacency_at`` and ``adjacency_between`` are O(active pairs · log
    intervals) rather than O(all records).
    """

    def __init__(self, n_devices: int, records: Iterable[ContactRecord], name: str = "trace"):
        if n_devices < 0:
            raise ValueError("n_devices must be non-negative")
        self.n_devices = int(n_devices)
        self.name = name
        raw_records = sorted(records, key=lambda r: (r.start, r.end))
        for record in raw_records:
            if not (0 <= record.a < n_devices and 0 <= record.b < n_devices):
                raise ValueError(
                    f"contact {record} references a device outside 0..{n_devices - 1}"
                )
        # Normalise: merge overlapping or touching intervals per pair, so that
        # per-pair interval lists are disjoint and sorted.  This makes point
        # and window queries exact with a single early-terminating scan.
        grouped: Dict[Tuple[int, int], List[ContactRecord]] = {}
        for record in raw_records:
            grouped.setdefault((record.a, record.b), []).append(record)
        self._by_pair: Dict[Tuple[int, int], List[ContactRecord]] = {}
        merged_records: List[ContactRecord] = []
        for pair, pair_records in grouped.items():
            merged: List[ContactRecord] = []
            for record in pair_records:
                if merged and record.start <= merged[-1].end:
                    previous = merged[-1]
                    if record.end > previous.end:
                        merged[-1] = ContactRecord(pair[0], pair[1], previous.start, record.end)
                else:
                    merged.append(record)
            self._by_pair[pair] = merged
            merged_records.extend(merged)
        self.records: List[ContactRecord] = sorted(merged_records, key=lambda r: (r.start, r.end))
        self._pair_starts: Dict[Tuple[int, int], List[float]] = {
            pair: [record.start for record in pair_records]
            for pair, pair_records in self._by_pair.items()
        }

    # ------------------------------------------------------------ properties
    @property
    def duration(self) -> float:
        """Trace length in seconds (end of the last contact; 0 when empty)."""
        if not self.records:
            return 0.0
        return max(record.end for record in self.records)

    def device_ids(self) -> List[int]:
        """All device identifiers."""
        return list(range(self.n_devices))

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContactTrace(name={self.name!r}, devices={self.n_devices}, "
            f"contacts={len(self.records)}, duration={self.duration:.0f}s)"
        )

    # ----------------------------------------------------------- core queries
    def _pair_active(self, pair: Tuple[int, int], time: float) -> bool:
        starts = self._pair_starts[pair]
        index = bisect_right(starts, time) - 1
        if index < 0:
            return False
        # Per-pair intervals are disjoint after normalisation, so only the
        # interval starting at or before `time` with the latest start can
        # cover it.
        record = self._by_pair[pair][index]
        return record.end > time

    def _pair_overlaps(self, pair: Tuple[int, int], start: float, end: float) -> bool:
        starts = self._pair_starts[pair]
        index = bisect_right(starts, end) - 1
        # Intervals are disjoint and sorted: any interval overlapping
        # [start, end) must begin before `end`, and among those only the ones
        # ending after `start` qualify.  Scan backwards with early exit.
        pair_records = self._by_pair[pair]
        while index >= 0:
            record = pair_records[index]
            if record.end > start:
                if record.start < end:
                    return True
                index -= 1
                continue
            # Disjointness: every earlier interval ends even sooner.
            return False
        return False

    def adjacency_at(self, time: float) -> Adjacency:
        """The instantaneous who-can-talk-to-whom graph at ``time``."""
        graph: Adjacency = {device: set() for device in range(self.n_devices)}
        for pair in self._by_pair:
            if self._pair_active(pair, time):
                a, b = pair
                graph[a].add(b)
                graph[b].add(a)
        return graph

    def adjacency_between(self, start: float, end: float) -> Adjacency:
        """The union of all edges active at any point in [start, end).

        This implements the paper's "union of all edges that have existed in
        the last 10 minutes" when called with ``(t - 600, t)``.
        """
        graph: Adjacency = {device: set() for device in range(self.n_devices)}
        for pair in self._by_pair:
            if self._pair_overlaps(pair, start, end):
                a, b = pair
                graph[a].add(b)
                graph[b].add(a)
        return graph

    def groups_at(self, time: float, window: float = 600.0) -> List[Set[int]]:
        """The paper's "nearby groups": components of the last-``window`` union."""
        graph = self.adjacency_between(max(0.0, time - window), time) if window > 0 else self.adjacency_at(time)
        return connected_components(graph)

    def snapshots(self, step: float, window: float = 0.0) -> Iterable[Tuple[float, Adjacency]]:
        """Yield ``(time, adjacency)`` every ``step`` seconds over the trace.

        With ``window > 0`` the adjacency is the trailing-window union rather
        than the instantaneous graph.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        time = 0.0
        end = self.duration
        while time <= end:
            if window > 0:
                yield time, self.adjacency_between(max(0.0, time - window), time + 1e-9)
            else:
                yield time, self.adjacency_at(time)
            time += step

    # ----------------------------------------------------------- construction
    @classmethod
    def from_snapshots(
        cls,
        snapshots: Sequence[Tuple[float, Adjacency]],
        n_devices: int,
        *,
        snapshot_length: Optional[float] = None,
        name: str = "trace",
    ) -> "ContactTrace":
        """Build a trace from timed adjacency snapshots.

        Each snapshot at time ``t`` is assumed to hold until the next
        snapshot (or for ``snapshot_length`` seconds for the last one).
        Contiguous intervals for the same pair are merged.
        """
        ordered = sorted(snapshots, key=lambda item: item[0])
        open_contacts: Dict[Tuple[int, int], float] = {}
        records: List[ContactRecord] = []

        def edges_of(adjacency: Adjacency) -> Set[Tuple[int, int]]:
            pairs: Set[Tuple[int, int]] = set()
            for node, neighbors in adjacency.items():
                for neighbor in neighbors:
                    pairs.add((min(node, neighbor), max(node, neighbor)))
            return pairs

        previous_time = 0.0
        for index, (time, adjacency) in enumerate(ordered):
            pairs = edges_of(adjacency)
            # Close contacts that disappeared.
            for pair in list(open_contacts):
                if pair not in pairs:
                    records.append(ContactRecord(pair[0], pair[1], open_contacts.pop(pair), time))
            # Open new contacts.
            for pair in pairs:
                open_contacts.setdefault(pair, time)
            previous_time = time
            del index
        # Close anything still open at the end of the trace.
        if ordered:
            if snapshot_length is None:
                # Infer a snapshot length from the median gap; fall back to 1s.
                gaps = [b[0] - a[0] for a, b in zip(ordered, ordered[1:])]
                inferred = sorted(gaps)[len(gaps) // 2] if gaps else 1.0
                snapshot_length = inferred if inferred > 0 else 1.0
            final_time = previous_time + snapshot_length
            for pair, start in open_contacts.items():
                records.append(ContactRecord(pair[0], pair[1], start, final_time))
        return cls(n_devices, records, name=name)

    # ------------------------------------------------------------------- I/O
    def to_csv(self, path: str) -> None:
        """Write the trace as ``device_a,device_b,start,end`` rows."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["device_a", "device_b", "start", "end"])
            for record in self.records:
                writer.writerow([record.a, record.b, f"{record.start:.3f}", f"{record.end:.3f}"])

    @classmethod
    def from_csv(cls, path: str, n_devices: Optional[int] = None, name: Optional[str] = None) -> "ContactTrace":
        """Read a trace written by :meth:`to_csv` (or a CRAWDAD-style export)."""
        records: List[ContactRecord] = []
        max_device = -1
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header and header[0].strip().lower() not in ("device_a", "a"):
                # No header row: treat the first row as data.
                rows = [header] + list(reader)
            else:
                rows = list(reader)
            for row in rows:
                if not row or row[0].startswith("#"):
                    continue
                a, b = int(row[0]), int(row[1])
                start, end = float(row[2]), float(row[3])
                records.append(ContactRecord(a, b, start, end))
                max_device = max(max_device, a, b)
        count = n_devices if n_devices is not None else max_device + 1
        return cls(count, records, name=name or path)

    # ------------------------------------------------------------ composition
    def restricted_to(self, devices: Sequence[int], name: Optional[str] = None) -> "ContactTrace":
        """A trace containing only contacts between the listed devices, renumbered."""
        keep = {device: index for index, device in enumerate(devices)}
        records = [
            ContactRecord(keep[record.a], keep[record.b], record.start, record.end)
            for record in self.records
            if record.a in keep and record.b in keep
        ]
        return ContactTrace(len(devices), records, name=name or f"{self.name}-subset")

    def union_graph(self) -> Adjacency:
        """The union of all contacts over the whole trace."""
        return union_adjacency([self.adjacency_between(0.0, self.duration + 1.0)])
