"""Synthetic Haggle-like contact traces.

The paper's Fig 11 replays the CRAWDAD Cambridge/Haggle iMote traces —
recordings of which Bluetooth devices (carried by students and conference
attendees) were in range of which others over several days.  Those traces
are not redistributable in this repository, so this module generates
synthetic traces that reproduce the features the evaluation actually
exercises:

* a small device population (9, 12 and 41 devices, matching the three
  datasets);
* people clustering into small, slowly changing groups (offices, lectures,
  social gatherings), with occasional larger gatherings;
* long stretches of isolation (nights, time away from the study group);
* a multi-day duration with a pronounced day/night activity cycle.

The generator is a community-based mobility model operating in discrete
slots: each device belongs to a *home community*; in every slot it is
either isolated, co-located with its home community, or visiting a shared
gathering place.  Devices co-located in the same place during a slot are
pairwise in contact for that slot.  Consecutive co-location slots merge
into longer contacts, giving a realistic contact-duration distribution
(many short contacts, a heavy tail of long ones).

If real CRAWDAD exports are available they can be loaded with
:meth:`repro.mobility.traces.ContactTrace.from_csv` and used in place of
these synthetic traces throughout the experiment harness.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.mobility.traces import ContactRecord, ContactTrace

__all__ = ["HAGGLE_DATASET_SIZES", "generate_haggle_like_trace", "haggle_dataset"]

#: Device counts of the three Cambridge/Haggle datasets used in the paper
#: (the paper reports "between 9 and 41 devices" across the three traces).
HAGGLE_DATASET_SIZES: Dict[int, int] = {1: 9, 2: 12, 3: 41}

#: Default durations (hours) matching the x-axis extents of Fig 11.
_DATASET_DURATION_HOURS: Dict[int, float] = {1: 90.0, 2: 120.0, 3: 70.0}

#: Typical community sizes per dataset: the conference trace (3) has larger
#: gatherings than the two daily-life traces.
_DATASET_COMMUNITY_SIZE: Dict[int, int] = {1: 3, 2: 4, 3: 8}


def _day_activity(hour_of_day: float) -> float:
    """Probability multiplier for social activity as a function of time of day.

    Activity peaks mid-day and collapses at night, producing the strong
    diurnal signal visible in the real traces' group-size curves.
    """
    # Smooth bump centred at 14:00 with a floor of 0.05 at night.
    peak = math.exp(-((hour_of_day - 14.0) ** 2) / (2 * 4.5**2))
    return 0.05 + 0.95 * peak


def generate_haggle_like_trace(
    n_devices: int,
    duration_hours: float = 72.0,
    *,
    seed: int = 0,
    slot_seconds: float = 300.0,
    community_size: int = 4,
    p_isolated_base: float = 0.35,
    p_gathering: float = 0.08,
    p_switch_community: float = 0.02,
    name: Optional[str] = None,
) -> ContactTrace:
    """Generate a synthetic contact trace with Haggle-like structure.

    Parameters
    ----------
    n_devices:
        Number of participating devices.
    duration_hours:
        Total trace duration.
    seed:
        Seed for the mobility randomness.
    slot_seconds:
        Length of one mobility slot; contacts are unions of consecutive
        co-location slots.
    community_size:
        Target size of home communities (small groups of colleagues/friends).
    p_isolated_base:
        Baseline probability that a device spends a slot alone (scaled up at
        night by the diurnal cycle).
    p_gathering:
        Probability that a daytime slot is a shared gathering that several
        communities attend (lectures, meals, conference sessions).
    p_switch_community:
        Per-slot probability that a device permanently migrates to another
        community — the slow churn that makes the aggregate drift.
    name:
        Trace label.

    Returns
    -------
    ContactTrace
        A trace whose adjacency-over-time can be fed to
        :class:`repro.environments.TraceEnvironment`.
    """
    if n_devices < 1:
        raise ValueError("need at least one device")
    if duration_hours <= 0:
        raise ValueError("duration must be positive")
    if slot_seconds <= 0:
        raise ValueError("slot_seconds must be positive")
    if community_size < 1:
        raise ValueError("community_size must be >= 1")

    rng = np.random.default_rng(seed)
    n_slots = int(math.ceil(duration_hours * 3600.0 / slot_seconds))
    n_communities = max(1, int(round(n_devices / community_size)))
    community_of = rng.integers(0, n_communities, size=n_devices)

    # open_contacts maps a device pair to the slot index at which the current
    # contact started; contacts close when the pair stops being co-located.
    open_contacts: Dict[Tuple[int, int], int] = {}
    records: List[ContactRecord] = []

    def close_contact(pair: Tuple[int, int], end_slot: int) -> None:
        start_slot = open_contacts.pop(pair)
        records.append(
            ContactRecord(
                pair[0],
                pair[1],
                start_slot * slot_seconds,
                end_slot * slot_seconds,
            )
        )

    for slot in range(n_slots):
        hour_of_day = (slot * slot_seconds / 3600.0) % 24.0
        activity = _day_activity(hour_of_day)

        # Slow community churn: a device occasionally moves to a new community.
        migrating = rng.random(n_devices) < p_switch_community * activity
        if migrating.any():
            community_of[migrating] = rng.integers(0, n_communities, size=int(migrating.sum()))

        # Is this slot a shared gathering?  If so, a random subset of
        # communities co-locate in one big group.
        gathering_communities: Set[int] = set()
        if rng.random() < p_gathering * activity and n_communities > 1:
            k = int(rng.integers(2, n_communities + 1))
            gathering_communities = set(
                int(c) for c in rng.choice(n_communities, size=k, replace=False)
            )

        # Each device picks its location for this slot.
        p_isolated = min(0.95, p_isolated_base + (1.0 - activity) * 0.6)
        isolated = rng.random(n_devices) < p_isolated
        location = np.where(isolated, -1 - np.arange(n_devices), community_of)
        if gathering_communities:
            at_gathering = np.isin(community_of, list(gathering_communities)) & ~isolated
            # The gathering is location code -1000 (a single shared place).
            location = np.where(at_gathering, -1000, location)

        # Devices sharing a location (>= 0 community room or the gathering)
        # are pairwise in contact this slot.
        colocated: Dict[int, List[int]] = {}
        for device in range(n_devices):
            loc = int(location[device])
            if loc <= -1 and loc != -1000:
                continue  # isolated
            colocated.setdefault(loc, []).append(device)

        current_pairs: Set[Tuple[int, int]] = set()
        for members in colocated.values():
            for i_index in range(len(members)):
                for j_index in range(i_index + 1, len(members)):
                    a, b = members[i_index], members[j_index]
                    current_pairs.add((min(a, b), max(a, b)))

        # Close contacts that ended, open contacts that began.
        for pair in list(open_contacts):
            if pair not in current_pairs:
                close_contact(pair, slot)
        for pair in current_pairs:
            open_contacts.setdefault(pair, slot)

    for pair in list(open_contacts):
        close_contact(pair, n_slots)

    label = name or f"synthetic-haggle-n{n_devices}-seed{seed}"
    return ContactTrace(n_devices, records, name=label)


def haggle_dataset(dataset: int, *, seed: Optional[int] = None) -> ContactTrace:
    """A synthetic stand-in for Cambridge/Haggle dataset 1, 2 or 3.

    Device counts, durations and typical group sizes follow the description
    in the paper (9, 12 and 41 devices; traces of several days; dataset 3 is
    a conference with larger gatherings).
    """
    if dataset not in HAGGLE_DATASET_SIZES:
        raise ValueError(f"dataset must be one of {sorted(HAGGLE_DATASET_SIZES)}, got {dataset}")
    n_devices = HAGGLE_DATASET_SIZES[dataset]
    duration = _DATASET_DURATION_HOURS[dataset]
    community = _DATASET_COMMUNITY_SIZE[dataset]
    effective_seed = (1000 + dataset) if seed is None else seed
    gathering = 0.08 if dataset < 3 else 0.25
    return generate_haggle_like_trace(
        n_devices,
        duration_hours=duration,
        seed=effective_seed,
        community_size=community,
        p_gathering=gathering,
        name=f"synthetic-haggle-dataset-{dataset}",
    )
