"""Mobility models and contact traces.

The paper's real-world evaluation (Fig 11) replays CRAWDAD
Cambridge/Haggle contact traces: recordings of which wireless devices were
within radio range of which others, as a function of time, while carried by
people.  Those traces are not redistributable here, so this package
provides:

* :class:`~repro.mobility.traces.ContactTrace` — the trace data model
  (interval contact records, adjacency snapshots, windowed unions) plus
  readers/writers so genuine CRAWDAD dumps can be loaded when available;
* :func:`~repro.mobility.synthetic_haggle.generate_haggle_like_trace` — a
  community-based synthetic generator that reproduces the statistical
  features the evaluation depends on (small transient groups, churn between
  groups, day/night cycles) at the paper's device counts (9, 12, 41);
* :class:`~repro.mobility.random_waypoint.RandomWaypointModel` — a classic
  mobility model used for additional sensitivity experiments;
* :mod:`repro.mobility.stats` — trace statistics (average group size,
  contact durations, inter-contact times) used to sanity-check the
  synthetic traces against the qualitative description of the real ones.
"""

from repro.mobility.random_waypoint import RandomWaypointModel
from repro.mobility.synthetic_haggle import (
    HAGGLE_DATASET_SIZES,
    generate_haggle_like_trace,
    haggle_dataset,
)
from repro.mobility.stats import (
    average_degree_series,
    average_group_size_series,
    contact_duration_stats,
    intercontact_time_stats,
)
from repro.mobility.traces import ContactRecord, ContactTrace

__all__ = [
    "ContactRecord",
    "ContactTrace",
    "HAGGLE_DATASET_SIZES",
    "RandomWaypointModel",
    "average_degree_series",
    "average_group_size_series",
    "contact_duration_stats",
    "generate_haggle_like_trace",
    "haggle_dataset",
    "intercontact_time_stats",
]
