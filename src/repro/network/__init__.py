"""Lossy and latent network models plus the event-driven delivery engine.

The paper's evaluation assumes synchronous rounds with instant, reliable
message delivery.  This package drops that assumption:

* :mod:`repro.network.models` — the :class:`NetworkModel` policy
  interface and its implementations: ``perfect`` (the default,
  bit-identical to the pre-network engine), ``bernoulli-loss``,
  ``latency`` (fixed / uniform / lognormal delay distributions),
  ``bandwidth-cap`` and the composable ``stacked`` model;
* :mod:`repro.network.delivery` — the :class:`DeliveryQueue` of
  in-flight messages (a payload pushed in round *t* arrives in round
  *t + d*, or never) and the :class:`MassLedger` that asserts Push-Sum
  mass conservation under loss every round.

Models are registered in :data:`repro.api.NETWORKS` and named by
``ScenarioSpec(network=..., network_params=...)``; new models register
with :func:`repro.api.register_network`.
"""

from repro.network.delivery import (
    DeliveryQueue,
    InFlightMessage,
    MassConservationError,
    MassLedger,
)
from repro.network.models import (
    DELAY_DISTRIBUTIONS,
    BandwidthCapNetwork,
    BernoulliLossNetwork,
    LatencyNetwork,
    NetworkModel,
    PerfectNetwork,
    StackedNetwork,
)

__all__ = [
    "BandwidthCapNetwork",
    "BernoulliLossNetwork",
    "DELAY_DISTRIBUTIONS",
    "DeliveryQueue",
    "InFlightMessage",
    "LatencyNetwork",
    "MassConservationError",
    "MassLedger",
    "NetworkModel",
    "PerfectNetwork",
    "StackedNetwork",
]
