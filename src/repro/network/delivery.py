"""The event-driven delivery engine: in-flight messages and mass accounting.

When a network model (:mod:`repro.network.models`) can delay messages, a
payload pushed at time *t* is no longer guaranteed to arrive at time
*t*: it sits *in flight* until its delivery instant, arrives at a host
that may have departed in the meantime, or never arrives at all.
:class:`DeliveryQueue` is the calendar of those in-flight messages,
keyed by the instant they mature.  The key is an opaque number: the
round engine keys by integer round index, the event engine
(:mod:`repro.events`) keys by simulated-seconds timestamps — the same
queue serves both, popping exactly the messages that mature at each
instant it is asked about.

Loss and latency are what make mass accounting critical.  Push-Sum-style
protocols are correct *because* every unit of mass exists exactly once —
at a host or inside a message — so the engine tracks where each unit is
and :class:`MassLedger` asserts the books balance every round:

    mass at hosts + mass in flight + mass lost  ==  mass created,

where "created" is the initial population mass plus whatever the protocol
injects deliberately (Push-Sum-Revert's reversion step re-injects initial
values by design; the engine measures that injection around the protocol
hooks rather than guessing it).  A violation means the engine duplicated
or leaked mass — a bug class that silently biases every lossy experiment
— so it raises immediately instead of producing a wrong figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["InFlightMessage", "DeliveryQueue", "MassLedger", "MassConservationError"]


@dataclass
class InFlightMessage:
    """One payload travelling through the (simulated) network.

    ``sent_round`` / ``deliver_round`` are the instants the message left
    and matures at — integer round indices under the round engine, float
    simulated-seconds timestamps under the event engine.  ``mass`` is the
    conserved quantity the payload carries (the Push-Sum weight), or
    ``None`` for protocols without a mass notion (sketches).
    """

    source: int
    destination: int
    payload: Any
    sent_round: float
    deliver_round: float
    mass: Optional[float] = None


class DeliveryQueue:
    """In-flight messages, keyed by the instant they mature.

    Messages scheduled for the same instant are delivered in the order
    they were scheduled (sending order), which keeps delayed delivery
    deterministic for equal seeds.  Keys are exact (dictionary lookup,
    no tolerance): the caller pops with the very same round index or
    timestamp it scheduled under — which both engines do by construction.
    """

    def __init__(self):
        self._pending: Dict[float, List[InFlightMessage]] = {}
        self._count = 0
        self._mass = 0.0

    def schedule(self, message: InFlightMessage) -> None:
        """Add ``message`` to the calendar under its delivery instant."""
        if message.deliver_round <= message.sent_round:
            raise ValueError(
                f"in-flight messages must mature strictly after they are sent "
                f"(sent {message.sent_round}, delivery {message.deliver_round})"
            )
        self._pending.setdefault(message.deliver_round, []).append(message)
        self._count += 1
        if message.mass is not None:
            self._mass += message.mass

    def due(self, round_index: float) -> List[InFlightMessage]:
        """Pop and return every message maturing at instant ``round_index``."""
        matured = self._pending.pop(round_index, [])
        self._count -= len(matured)
        for message in matured:
            if message.mass is not None:
                self._mass -= message.mass
        return matured

    @property
    def in_flight(self) -> int:
        """Number of messages currently in flight."""
        return self._count

    @property
    def in_flight_mass(self) -> float:
        """Total conserved mass currently in flight."""
        return self._mass

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


class MassConservationError(RuntimeError):
    """The delivery engine duplicated or leaked conserved mass."""


@dataclass
class MassLedger:
    """Double-entry bookkeeping for a conserved protocol quantity.

    The engine opens the ledger with the population's initial mass, then
    per round: adds the injection it measured around the protocol's own
    hooks (reversion re-injects mass by design), adds the mass of every
    lost message, and finally calls :meth:`check` with the mass it can
    still see (at hosts and in flight).  ``tolerance`` absorbs float
    summation noise only — a real leak fails by whole units.
    """

    initial: float = 0.0
    injected: float = 0.0
    lost: float = 0.0
    tolerance: float = 1e-6

    def open(self, initial_mass: float) -> None:
        """Start the books with the population's initial mass."""
        self.initial = float(initial_mass)
        self.injected = 0.0
        self.lost = 0.0

    def record_injected(self, delta: float) -> None:
        """Mass the protocol itself created (+) or destroyed (-) this round."""
        self.injected += float(delta)

    def record_lost(self, mass: float) -> None:
        """Mass that left the system inside a lost message."""
        self.lost += float(mass)

    @property
    def expected(self) -> float:
        """Mass that should currently exist at hosts plus in flight."""
        return self.initial + self.injected - self.lost

    def check(self, observed_mass: float, *, round_index: int) -> None:
        """Assert the books balance; raises :class:`MassConservationError`."""
        scale = max(abs(self.initial), abs(self.injected), abs(self.lost), 1.0)
        if abs(observed_mass - self.expected) > self.tolerance * scale:
            raise MassConservationError(
                f"mass conservation violated at round {round_index}: "
                f"observed {observed_mass!r} at hosts + in flight, but the ledger "
                f"expects {self.expected!r} (initial {self.initial!r} "
                f"+ injected {self.injected!r} - lost {self.lost!r})"
            )
