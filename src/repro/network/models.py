"""Network models: how the simulated radio treats a message in flight.

The paper's evaluation — and the seed reproduction — assumes a *perfect*
network: every message sent in round *t* arrives at the end of round *t*.
Real deployments of the protocols (bandwidth- and power-constrained
wireless devices) see none of that: links drop packets, deliveries take
time, and radios have per-round budgets.  The classes here model those
conditions as a pluggable policy the simulator consults for every
non-self message:

* :class:`PerfectNetwork` — instant, reliable delivery (the default; the
  engine's behaviour is bit-identical to the pre-network-layer code).
* :class:`BernoulliLossNetwork` — every message is lost independently
  with probability ``p``.
* :class:`LatencyNetwork` — delivery is deferred by a per-message delay
  drawn from a fixed, uniform or lognormal distribution (in rounds).
* :class:`BandwidthCapNetwork` — each host may place at most
  ``bytes_per_round`` on the radio per round; over-budget messages are
  dropped.
* :class:`StackedNetwork` — composes any of the above: a message
  survives only if every layer delivers it, and the layers' delays add.

The single entry point is :meth:`NetworkModel.plan`: given a message's
endpoints, round and size, return the delivery delay in rounds (``0`` =
the end of the sending round, exactly the perfect-network semantics) or
``None`` when the message is lost.  Models draw all randomness from the
generator the engine passes in (the dedicated ``"network"`` stream of
:class:`~repro.simulator.rng.RandomStreams`), so installing a network
model never perturbs peer selection or protocol randomness — a loss rate
of exactly ``0.0`` reproduces the perfect network bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "NetworkModel",
    "PerfectNetwork",
    "BernoulliLossNetwork",
    "LatencyNetwork",
    "BandwidthCapNetwork",
    "StackedNetwork",
    "DELAY_DISTRIBUTIONS",
]

#: Delay distributions understood by :class:`LatencyNetwork`.
DELAY_DISTRIBUTIONS = ("fixed", "uniform", "lognormal")


class NetworkModel:
    """Policy deciding the fate of every non-self message on the radio.

    Subclasses implement :meth:`plan`; the engine calls it once per
    message (push mode) or once per pairwise exchange (exchange mode) and
    interprets the result:

    * ``0`` — delivered at the end of the sending round;
    * ``d > 0`` — delivered at the end of round ``t + d`` (push mode
      only: atomic exchanges cannot be deferred, which is why the spec
      layer rejects latency-capable models in ``mode="exchange"``);
    * ``None`` — silently lost, exactly like a payload addressed to a
      departed host.

    Class attributes
    ----------------
    name:
        Registry name used in results and rendered tables.
    has_latency:
        Whether :meth:`plan` may ever return a delay > 0.  Instances may
        override the class value (a fixed delay of 0 has no latency).
    has_loss:
        Whether :meth:`plan` may ever return ``None``.
    """

    name: str = "abstract"
    has_latency: bool = False
    has_loss: bool = False

    def begin_round(self, round_index: int) -> None:
        """Hook run once per round before any messages are planned.

        Budgeted models (:class:`BandwidthCapNetwork`) reset their
        per-round accounting here.  The default is a no-op.
        """

    def plan(
        self,
        source: int,
        destination: int,
        round_index: int,
        size_bytes: int,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """The delivery delay in rounds for this message, or ``None`` if lost."""
        return 0

    def plan_seconds(
        self,
        source: int,
        destination: int,
        round_index: int,
        size_bytes: int,
        rng: np.random.Generator,
    ) -> Optional[float]:
        """The delivery delay in *simulated seconds*, or ``None`` if lost.

        The event engine (:mod:`repro.events`) consults this instead of
        :meth:`plan`: delays become continuous times on the global event
        calendar rather than whole-round deferrals.  The default maps the
        round-based answer one-to-one (one round of delay = one second),
        so loss-only and budget models behave identically under both
        engines; latency models override it to yield unrounded delays.
        ``round_index`` is the engine's current sample bin.
        """
        delay = self.plan(source, destination, round_index, size_bytes, rng)
        return None if delay is None else float(delay)

    def describe(self) -> dict:
        """The model's salient parameters (for metadata and reports)."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in self.describe().items() if k != "name")
        return f"{type(self).__name__}({params})"


class PerfectNetwork(NetworkModel):
    """Instant, reliable delivery — the paper's (implicit) network.

    ``plan`` never draws from the generator, so a simulation carrying a
    perfect model is bit-identical to one carrying no model at all.
    """

    name = "perfect"


class BernoulliLossNetwork(NetworkModel):
    """Independent per-message loss with probability ``p``.

    The memoryless loss model of the gossip literature: every non-self
    message survives with probability ``1 - p`` regardless of endpoints,
    history or size.  ``p = 0`` draws the same number of variates as any
    other ``p`` (one per message), so results at ``p = 0`` are
    bit-identical to the perfect network — the draws come from the
    isolated ``"network"`` stream.
    """

    name = "bernoulli-loss"
    has_loss = True

    def __init__(self, p: float):
        if not 0.0 <= float(p) <= 1.0:
            raise ValueError(f"loss probability p must be in [0, 1], got {p!r}")
        self.p = float(p)

    def plan(self, source, destination, round_index, size_bytes, rng) -> Optional[int]:
        if rng.random() < self.p:
            return None
        return 0

    def describe(self) -> dict:
        return {"name": self.name, "p": self.p}


class LatencyNetwork(NetworkModel):
    """Per-message delivery delay drawn from a distribution (in rounds).

    Parameters
    ----------
    distribution:
        ``"fixed"`` (every message takes ``delay`` rounds), ``"uniform"``
        (integer delay uniform on ``[low, high]``) or ``"lognormal"``
        (``round(lognormal(mean, sigma))`` — a heavy-tailed model of
        store-and-forward links).
    delay, low, high, mean, sigma:
        Distribution parameters (only the relevant ones are read).
    max_delay:
        Hard cap applied to every draw, bounding queue memory.
    """

    name = "latency"

    def __init__(
        self,
        *,
        distribution: str = "fixed",
        delay: int = 1,
        low: int = 0,
        high: int = 3,
        mean: float = 0.0,
        sigma: float = 0.5,
        max_delay: int = 64,
    ):
        if distribution not in DELAY_DISTRIBUTIONS:
            raise ValueError(
                f"unknown delay distribution {distribution!r}; "
                f"expected one of {DELAY_DISTRIBUTIONS}"
            )
        if isinstance(delay, bool) or not isinstance(delay, int) or delay < 0:
            raise ValueError(f"fixed delay must be a non-negative integer, got {delay!r}")
        if low < 0 or high < low:
            raise ValueError(f"uniform delay needs 0 <= low <= high, got [{low}, {high}]")
        if sigma < 0:
            raise ValueError(f"lognormal sigma must be non-negative, got {sigma}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        self.distribution = distribution
        self.delay = int(delay)
        self.low = int(low)
        self.high = int(high)
        self.mean = float(mean)
        self.sigma = float(sigma)
        self.max_delay = int(max_delay)
        if distribution == "fixed":
            worst = self.delay
        elif distribution == "uniform":
            worst = self.high
        else:
            worst = self.max_delay
        self.has_latency = min(worst, self.max_delay) > 0

    def plan(self, source, destination, round_index, size_bytes, rng) -> Optional[int]:
        if self.distribution == "fixed":
            drawn = self.delay
        elif self.distribution == "uniform":
            drawn = int(rng.integers(self.low, self.high + 1))
        else:
            drawn = int(round(rng.lognormal(self.mean, self.sigma)))
        return min(drawn, self.max_delay)

    def plan_seconds(self, source, destination, round_index, size_bytes, rng) -> Optional[float]:
        # Same draws, continuous answer: the uniform distribution keeps its
        # integer draw (identical stream consumption under either engine),
        # while the lognormal keeps its unrounded tail — the event calendar
        # has no round grid to snap to.
        if self.distribution == "fixed":
            drawn = float(self.delay)
        elif self.distribution == "uniform":
            drawn = float(rng.integers(self.low, self.high + 1))
        else:
            drawn = float(rng.lognormal(self.mean, self.sigma))
        return min(drawn, float(self.max_delay))

    def describe(self) -> dict:
        described = {"name": self.name, "distribution": self.distribution,
                     "max_delay": self.max_delay}
        if self.distribution == "fixed":
            described["delay"] = self.delay
        elif self.distribution == "uniform":
            described.update(low=self.low, high=self.high)
        else:
            described.update(mean=self.mean, sigma=self.sigma)
        return described


class BandwidthCapNetwork(NetworkModel):
    """Per-host, per-round radio budget; over-budget messages are dropped.

    Each round every host may place at most ``bytes_per_round`` bytes on
    the radio; a message that would exceed the sender's remaining budget
    is lost (the radio refuses it).  Budgets reset every round via
    :meth:`begin_round`.  Deterministic: no randomness is consumed.
    """

    name = "bandwidth-cap"
    has_loss = True

    def __init__(self, bytes_per_round: int):
        if isinstance(bytes_per_round, bool) or not isinstance(bytes_per_round, int) \
                or bytes_per_round < 1:
            raise ValueError(
                f"bytes_per_round must be a positive integer, got {bytes_per_round!r}"
            )
        self.bytes_per_round = int(bytes_per_round)
        self._spent: Dict[int, int] = {}

    def begin_round(self, round_index: int) -> None:
        self._spent.clear()

    def plan(self, source, destination, round_index, size_bytes, rng) -> Optional[int]:
        spent = self._spent.get(source, 0)
        if spent + int(size_bytes) > self.bytes_per_round:
            return None
        self._spent[source] = spent + int(size_bytes)
        return 0

    def describe(self) -> dict:
        return {"name": self.name, "bytes_per_round": self.bytes_per_round}


class StackedNetwork(NetworkModel):
    """Several network models composed into one link policy.

    A message survives only if *every* layer delivers it, and the layers'
    delays add — e.g. a lossy link with store-and-forward latency is
    ``StackedNetwork([BernoulliLossNetwork(0.1), LatencyNetwork(...)])``.
    Layers are consulted in order; a loss short-circuits the rest (later
    layers draw no randomness for that message, keeping equal-seed runs of
    equal stacks bit-reproducible).
    """

    name = "stacked"

    def __init__(self, layers: Sequence[NetworkModel]):
        layers = list(layers)
        if not layers:
            raise ValueError("a stacked network needs at least one layer")
        for layer in layers:
            if not isinstance(layer, NetworkModel):
                raise ValueError(
                    f"stacked layers must be NetworkModel instances, got {type(layer).__name__}"
                )
        self.layers: List[NetworkModel] = layers
        self.has_latency = any(layer.has_latency for layer in layers)
        self.has_loss = any(layer.has_loss for layer in layers)

    def begin_round(self, round_index: int) -> None:
        for layer in self.layers:
            layer.begin_round(round_index)

    def plan(self, source, destination, round_index, size_bytes, rng) -> Optional[int]:
        total_delay = 0
        for layer in self.layers:
            delay = layer.plan(source, destination, round_index, size_bytes, rng)
            if delay is None:
                return None
            total_delay += delay
        return total_delay

    def plan_seconds(self, source, destination, round_index, size_bytes, rng) -> Optional[float]:
        total_delay = 0.0
        for layer in self.layers:
            delay = layer.plan_seconds(source, destination, round_index, size_bytes, rng)
            if delay is None:
                return None
            total_delay += delay
        return total_delay

    def describe(self) -> dict:
        return {"name": self.name, "layers": [layer.describe() for layer in self.layers]}
